//! Approximate Diameter (paper §2.1).
//!
//! "Approximate Diameter estimates the diameter of a graph, which is the
//! longest distance between any two vertices." Implemented, as in the
//! GraphLab toolkit, with Flajolet–Martin neighborhood sketches: every
//! vertex keeps K bitmask registers approximating `|N_h(v)|`, the number of
//! vertices within h hops; each iteration ORs in the neighbors' sketches.
//! The diameter estimate is the first h at which the global neighborhood
//! function stops growing. All vertices stay active for the whole run —
//! the paper's "active fraction = 1.0 for the whole lifecycle" (Figure 1).

use graphmine_engine::{ApplyInfo, EdgeSet, ExecutionConfig, RunTrace, SyncEngine, VertexProgram};
use graphmine_graph::{Direction, EdgeId, Graph, VertexId};
use parking_lot::Mutex;

/// Number of FM registers per vertex (more = tighter estimate).
pub const NUM_SKETCHES: usize = 8;

/// A Flajolet–Martin bitmask sketch set.
pub type Sketch = [u64; NUM_SKETCHES];

/// Splitmix-style hash for seeding sketch bits.
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Geometric bit position: index of the lowest set bit of a hash (FM's
/// ρ function), capped to 63.
fn fm_bit(h: u64) -> u32 {
    h.trailing_zeros().min(63)
}

/// FM estimate of the cardinality from one bitmask: 2^r / 0.77351 where r is
/// the lowest unset bit.
fn fm_estimate(mask: u64) -> f64 {
    let r = (!mask).trailing_zeros();
    2f64.powi(r as i32) / 0.77351
}

/// Global convergence tracker shared across iterations.
#[derive(Debug, Clone, Default)]
pub struct AdGlobal {
    /// Neighborhood-function estimate after the previous iteration.
    pub prev_nf: f64,
    /// Estimate after the current iteration (filled by `should_halt`).
    pub curr_nf: f64,
    /// Iteration at which growth stopped (the diameter estimate).
    pub converged_at: Option<usize>,
}

/// The AD vertex program.
pub struct ApproxDiameter {
    /// Relative growth below which the neighborhood function is "stable".
    pub growth_tolerance: f64,
    /// Interior mutability for convergence bookkeeping computed in
    /// `should_halt` (the engine hands `&Global` there).
    tracker: Mutex<AdGlobal>,
}

impl ApproxDiameter {
    /// Standard configuration (0.1% growth tolerance).
    pub fn new() -> ApproxDiameter {
        ApproxDiameter {
            growth_tolerance: 1e-3,
            tracker: Mutex::new(AdGlobal::default()),
        }
    }

    fn neighborhood_function(states: &[Sketch]) -> f64 {
        states
            .iter()
            .map(|s| {
                let mean: f64 =
                    s.iter().map(|&m| fm_estimate(m)).sum::<f64>() / NUM_SKETCHES as f64;
                mean
            })
            .sum()
    }
}

impl Default for ApproxDiameter {
    fn default() -> Self {
        Self::new()
    }
}

impl VertexProgram for ApproxDiameter {
    type State = Sketch;
    type EdgeData = ();
    type Accum = Sketch;
    type Message = ();
    type Global = ();

    fn gather_edges(&self) -> EdgeSet {
        EdgeSet::Out
    }

    fn scatter_edges(&self) -> EdgeSet {
        EdgeSet::None
    }

    fn always_active(&self) -> bool {
        true
    }

    fn gather(
        &self,
        _graph: &Graph,
        _v: VertexId,
        _e: EdgeId,
        _nbr: VertexId,
        _v_state: &Sketch,
        nbr_state: &Sketch,
        _edge: &(),
        _global: &(),
    ) -> Sketch {
        *nbr_state
    }

    fn merge(&self, into: &mut Sketch, from: Sketch) {
        for i in 0..NUM_SKETCHES {
            into[i] |= from[i];
        }
    }

    fn apply(
        &self,
        _v: VertexId,
        state: &mut Sketch,
        acc: Option<Sketch>,
        _msg: Option<&()>,
        _global: &(),
        info: &mut ApplyInfo,
    ) {
        info.ops += NUM_SKETCHES as u64;
        if let Some(acc) = acc {
            for i in 0..NUM_SKETCHES {
                state[i] |= acc[i];
            }
        }
    }

    fn should_halt(&self, iter: usize, states: &[Sketch], _global: &()) -> bool {
        let nf = Self::neighborhood_function(states);
        let mut t = self.tracker.lock();
        let grew = nf > t.prev_nf * (1.0 + self.growth_tolerance);
        t.curr_nf = nf;
        if !grew && iter > 0 {
            t.converged_at = Some(iter);
            return true;
        }
        t.prev_nf = nf;
        false
    }
}

/// Result of a diameter estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiameterEstimate {
    /// Estimated diameter in hops.
    pub diameter: usize,
    /// Final neighborhood-function estimate (≈ reachable pairs).
    pub neighborhood_function: f64,
}

/// Run approximate diameter estimation on an undirected graph.
pub fn run_adiam(graph: &Graph, config: &ExecutionConfig) -> (DiameterEstimate, RunTrace) {
    let n = graph.num_vertices();
    // Seed sketches: vertex v sets one FM bit per register.
    let states: Vec<Sketch> = (0..n as u64)
        .map(|v| {
            let mut s = [0u64; NUM_SKETCHES];
            for (r, slot) in s.iter_mut().enumerate() {
                *slot = 1u64 << fm_bit(hash64(v ^ ((r as u64) << 56) ^ 0xABCD));
            }
            s
        })
        .collect();
    let program = ApproxDiameter::new();
    let edge_data = vec![(); graph.num_edges()];
    let engine = SyncEngine::with_global(graph, program, states, edge_data, ());
    let (final_states, trace) = engine.run_resumable(config);
    let nf = ApproxDiameter::neighborhood_function(&final_states);
    // Diameter ≈ iterations until the neighborhood function stabilized; the
    // final iteration confirmed no growth, so the distance reached is one
    // less than the number of iterations run.
    let diameter = trace.num_iterations().saturating_sub(1);
    (
        DiameterEstimate {
            diameter,
            neighborhood_function: nf,
        },
        trace,
    )
}

/// Exact diameter by all-pairs BFS (small graphs only).
pub fn exact_diameter(graph: &Graph) -> usize {
    let mut best = 0usize;
    for v in graph.vertices() {
        let dist = graphmine_graph::bfs_distances(graph, v, Direction::Out);
        for &d in &dist {
            if d != u32::MAX {
                best = best.max(d as usize);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_graph::GraphBuilder;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::undirected(n);
        for v in 0..(n as u32 - 1) {
            b.push_edge(v, v + 1);
        }
        b.build()
    }

    #[test]
    fn path_diameter_close_to_exact() {
        let g = path(20);
        let exact = exact_diameter(&g); // 19
        let (est, trace) = run_adiam(&g, &ExecutionConfig::default());
        assert!(trace.converged);
        // FM bitmask estimates move in powers of two, so the tail of a
        // path is blurred; accept the estimate within 35% of exact.
        assert!(
            (est.diameter as f64 - exact as f64).abs() <= 0.35 * exact as f64,
            "estimated {} vs exact {exact}",
            est.diameter
        );
    }

    #[test]
    fn clique_diameter_is_tiny() {
        let mut b = GraphBuilder::undirected(8);
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                b.push_edge(i, j);
            }
        }
        let (est, _) = run_adiam(&b.build(), &ExecutionConfig::default());
        assert!(est.diameter <= 2, "estimated {}", est.diameter);
    }

    #[test]
    fn all_vertices_active_throughout() {
        let g = path(12);
        let (_, trace) = run_adiam(&g, &ExecutionConfig::default());
        assert!(trace
            .active_fraction()
            .iter()
            .all(|&f| (f - 1.0).abs() < 1e-12));
    }

    #[test]
    fn neighborhood_function_approximates_pair_count() {
        // Connected graph: NF should approach n^2 (every vertex reaches all
        // n vertices). FM error is within a factor ~2 at 8 registers.
        let g = path(30);
        let (est, _) = run_adiam(&g, &ExecutionConfig::default());
        let n2 = 30.0 * 30.0;
        assert!(
            est.neighborhood_function > n2 / 3.0 && est.neighborhood_function < n2 * 3.0,
            "NF {} vs n^2 {n2}",
            est.neighborhood_function
        );
    }

    #[test]
    fn eread_constant_per_iteration() {
        let g = path(16); // degree sum 30
        let (_, trace) = run_adiam(&g, &ExecutionConfig::default());
        assert!(trace.iterations.iter().all(|it| it.edge_reads == 30));
    }

    #[test]
    fn exact_diameter_of_cycle() {
        let mut b = GraphBuilder::undirected(10);
        for v in 0..10u32 {
            b.push_edge(v, (v + 1) % 10);
        }
        assert_eq!(exact_diameter(&b.build()), 5);
    }
}
