//! Jacobi iterative linear solver (paper §2.1).
//!
//! "Jacobi method is an iterative method to solve a diagonally dominant
//! system of linear equations." The matrix is the uniform-degree graph from
//! `graphmine-gen`; one iteration gathers the off-diagonal row product and
//! applies `x_i ← (b_i − Σ_j A_ij x_j) / A_ii`. All vertices are active for
//! all iterations (paper §4.4) and, uniquely in the suite, every behavior
//! metric except EREAD scales with the matrix dimension (Figure 12).

use graphmine_engine::{ApplyInfo, EdgeSet, ExecutionConfig, RunTrace, SyncEngine, VertexProgram};
use graphmine_gen::MatrixSystem;
use graphmine_graph::{EdgeId, Graph, VertexId};
use serde::{Deserialize, Serialize};

/// Per-vertex Jacobi state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JacobiState {
    /// Current solution component.
    pub x: f64,
    /// Absolute change in the last apply.
    pub delta: f64,
}

/// The Jacobi vertex program. Diagonal and right-hand side live in the
/// program (they are per-row constants, not graph data).
pub struct Jacobi {
    diagonal: Vec<f64>,
    rhs: Vec<f64>,
    /// Convergence tolerance on the max component change.
    pub tolerance: f64,
}

impl Jacobi {
    /// Build from a generated system.
    pub fn new(system: &MatrixSystem, tolerance: f64) -> Jacobi {
        Jacobi {
            diagonal: system.diagonal.clone(),
            rhs: system.rhs.clone(),
            tolerance,
        }
    }
}

impl VertexProgram for Jacobi {
    type State = JacobiState;
    type EdgeData = f64;
    type Accum = f64;
    type Message = ();
    type Global = ();

    fn gather_edges(&self) -> EdgeSet {
        EdgeSet::Out
    }

    fn scatter_edges(&self) -> EdgeSet {
        EdgeSet::None
    }

    fn always_active(&self) -> bool {
        true
    }

    fn gather(
        &self,
        _graph: &Graph,
        _v: VertexId,
        _e: EdgeId,
        _nbr: VertexId,
        _v_state: &JacobiState,
        nbr_state: &JacobiState,
        a_ij: &f64,
        _global: &(),
    ) -> f64 {
        a_ij * nbr_state.x
    }

    fn merge(&self, into: &mut f64, from: f64) {
        *into += from;
    }

    fn apply(
        &self,
        v: VertexId,
        state: &mut JacobiState,
        acc: Option<f64>,
        _msg: Option<&()>,
        _global: &(),
        info: &mut ApplyInfo,
    ) {
        info.ops += 2;
        let i = v as usize;
        let next = (self.rhs[i] - acc.unwrap_or(0.0)) / self.diagonal[i];
        state.delta = (next - state.x).abs();
        state.x = next;
    }

    fn should_halt(&self, _iter: usize, states: &[JacobiState], _global: &()) -> bool {
        states.iter().all(|s| s.delta < self.tolerance)
    }
}

/// Run Jacobi on a generated system. Returns the solution vector and the
/// behavior trace.
pub fn run_jacobi(system: &MatrixSystem, config: &ExecutionConfig) -> (Vec<f64>, RunTrace) {
    let n = system.graph.num_vertices();
    let states = vec![
        JacobiState {
            x: 0.0,
            delta: f64::INFINITY,
        };
        n
    ];
    let program = Jacobi::new(system, 1e-10);
    let engine = SyncEngine::with_global(
        &system.graph,
        program,
        states,
        system.off_diagonal.clone(),
        (),
    );
    let (finals, trace) = engine.run_resumable(config);
    (finals.into_iter().map(|s| s.x).collect(), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_gen::matrix_graph;

    #[test]
    fn solves_generated_system() {
        let sys = matrix_graph(64, 4, 5);
        let (x, trace) = run_jacobi(&sys, &ExecutionConfig::default());
        assert!(trace.converged);
        let r = sys.residual(&x);
        assert!(r < 1e-8, "residual {r}");
    }

    #[test]
    fn all_active_constant_ereads() {
        let sys = matrix_graph(32, 4, 6);
        let (_, trace) = run_jacobi(&sys, &ExecutionConfig::default());
        for it in &trace.iterations {
            assert_eq!(it.active, 32);
            assert_eq!(it.edge_reads, 32 * 4);
            assert_eq!(it.messages, 0);
        }
    }

    #[test]
    fn larger_systems_do_more_work_per_iteration() {
        // The paper's Jacobi finding: WORK and UPDT scale with matrix size;
        // per-edge EREAD does not (uniform degree).
        let small = matrix_graph(32, 4, 7);
        let large = matrix_graph(128, 4, 7);
        let (_, ts) = run_jacobi(&small, &ExecutionConfig::default());
        let (_, tl) = run_jacobi(&large, &ExecutionConfig::default());
        assert!(tl.updt() > ts.updt());
        let per_edge_small = ts.eread() / ts.num_edges as f64;
        let per_edge_large = tl.eread() / tl.num_edges as f64;
        assert!((per_edge_small - per_edge_large).abs() < 1e-9);
    }

    #[test]
    fn iteration_cap_respected() {
        let sys = matrix_graph(64, 4, 8);
        let (_, trace) = run_jacobi(&sys, &ExecutionConfig::with_max_iterations(3));
        assert_eq!(trace.num_iterations(), 3);
        assert!(!trace.converged);
    }

    #[test]
    fn deterministic_solution() {
        let sys = matrix_graph(48, 4, 9);
        let (x1, _) = run_jacobi(&sys, &ExecutionConfig::default());
        let (x2, _) = run_jacobi(&sys, &ExecutionConfig::default().sequential());
        assert_eq!(x1, x2);
    }
}
