//! PageRank (paper §2.1).
//!
//! "All vertices are active initially. A vertex becomes inactive when its
//! rank remains stable within a given tolerance." Ranks are gathered from
//! neighbors (one edge read per neighbor per iteration), so PR exercises
//! both communication channels: EREADs for rank flow and MSGs for
//! reactivation signals — the distinction the paper calls out in §3.4.

use graphmine_engine::{
    ApplyInfo, EdgeSet, ExecutionConfig, NoGlobal, RunTrace, SyncEngine, VertexProgram,
};
use graphmine_graph::{Direction, EdgeId, Graph, VertexId};
use serde::{Deserialize, Serialize};

/// Damping factor (the classic 0.85).
pub const DAMPING: f64 = 0.85;

/// Per-vertex PageRank state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrState {
    /// Current rank estimate (un-normalized "random surfer mass"; the
    /// stationary values average to 1).
    pub rank: f64,
    /// Magnitude of the last apply's change, used to gate scattering.
    pub last_change: f64,
}

/// The PageRank vertex program over an undirected graph: each neighbor
/// contributes `rank / degree`.
pub struct PageRank {
    /// Convergence tolerance on per-vertex rank change.
    pub tolerance: f64,
}

impl Default for PageRank {
    fn default() -> PageRank {
        PageRank { tolerance: 1e-3 }
    }
}

impl VertexProgram for PageRank {
    type State = PrState;
    type EdgeData = ();
    type Accum = f64;
    type Message = ();
    type Global = NoGlobal;

    fn gather_edges(&self) -> EdgeSet {
        EdgeSet::Out
    }

    fn scatter_edges(&self) -> EdgeSet {
        EdgeSet::Out
    }

    fn gather(
        &self,
        graph: &Graph,
        _v: VertexId,
        _e: EdgeId,
        nbr: VertexId,
        _v_state: &PrState,
        nbr_state: &PrState,
        _edge: &(),
        _global: &NoGlobal,
    ) -> f64 {
        nbr_state.rank / graph.degree_dir(nbr, Direction::Out).max(1) as f64
    }

    fn merge(&self, into: &mut f64, from: f64) {
        *into += from;
    }

    fn apply(
        &self,
        _v: VertexId,
        state: &mut PrState,
        acc: Option<f64>,
        _msg: Option<&()>,
        _global: &NoGlobal,
        info: &mut ApplyInfo,
    ) {
        info.ops += 2;
        let sum = acc.unwrap_or(0.0);
        let new_rank = (1.0 - DAMPING) + DAMPING * sum;
        state.last_change = (new_rank - state.rank).abs();
        state.rank = new_rank;
    }

    fn scatter(
        &self,
        _graph: &Graph,
        _v: VertexId,
        _e: EdgeId,
        _nbr: VertexId,
        state: &PrState,
        _nbr_state: &PrState,
        _edge: &(),
        _global: &NoGlobal,
    ) -> Option<()> {
        // Keep neighbors active while this vertex's rank is still moving.
        (state.last_change > self.tolerance).then_some(())
    }

    fn combine(&self, _into: &mut (), _from: ()) {}

    /// Unit messages carry no data, so combine order is vacuously
    /// irrelevant and the pull path is always safe.
    fn combine_commutative(&self) -> bool {
        true
    }
}

/// Run PageRank; returns per-vertex ranks and the behavior trace.
pub fn run_pagerank(graph: &Graph, config: &ExecutionConfig) -> (Vec<f64>, RunTrace) {
    run_pagerank_with_tolerance(graph, 1e-3, config)
}

/// Run PageRank with an explicit tolerance.
pub fn run_pagerank_with_tolerance(
    graph: &Graph,
    tolerance: f64,
    config: &ExecutionConfig,
) -> (Vec<f64>, RunTrace) {
    run_pagerank_with_config(graph, tolerance, config)
}

/// Run PageRank with full control over the execution configuration
/// (including the cluster-simulation partition).
pub fn run_pagerank_with_config(
    graph: &Graph,
    tolerance: f64,
    config: &ExecutionConfig,
) -> (Vec<f64>, RunTrace) {
    let states = vec![
        PrState {
            rank: 1.0,
            last_change: f64::INFINITY,
        };
        graph.num_vertices()
    ];
    let edge_data = vec![(); graph.num_edges()];
    let (finals, trace) =
        SyncEngine::new(graph, PageRank { tolerance }, states, edge_data).run_resumable(config);
    (finals.into_iter().map(|s| s.rank).collect(), trace)
}

/// Sequential power-iteration reference (fixed iteration count).
pub fn power_iteration(graph: &Graph, iterations: usize) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut rank = vec![1.0f64; n];
    for _ in 0..iterations {
        let mut next = vec![1.0 - DAMPING; n];
        for v in graph.vertices() {
            let share = rank[v as usize] / graph.degree_dir(v, Direction::Out).max(1) as f64;
            for u in graph.neighbors(v, Direction::Out) {
                next[u as usize] += DAMPING * share;
            }
        }
        rank = next;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_graph::GraphBuilder;

    fn lollipop() -> Graph {
        // Triangle 0-1-2 with a tail 2-3-4.
        GraphBuilder::undirected(5)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .edge(2, 3)
            .edge(3, 4)
            .build()
    }

    #[test]
    fn matches_power_iteration() {
        let g = lollipop();
        let cfg = ExecutionConfig::default();
        let (ranks, _) = run_pagerank_with_tolerance(&g, 1e-9, &cfg);
        let reference = power_iteration(&g, 200);
        for (a, b) in ranks.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn hub_outranks_leaf() {
        let g = lollipop();
        let (ranks, _) = run_pagerank(&g, &ExecutionConfig::default());
        assert!(ranks[2] > ranks[4], "hub {} vs leaf {}", ranks[2], ranks[4]);
    }

    #[test]
    fn mass_is_conserved_approximately() {
        let g = lollipop();
        let (ranks, _) = run_pagerank_with_tolerance(&g, 1e-9, &ExecutionConfig::default());
        let total: f64 = ranks.iter().sum();
        // Undirected graph, no dangling mass: total ≈ n.
        assert!((total - 5.0).abs() < 1e-3, "total {total}");
    }

    #[test]
    fn active_fraction_decays_gradually() {
        // Per the paper: PR starts fully active, then the fraction decreases.
        let mut b = GraphBuilder::undirected(60);
        for v in 0..59u32 {
            b.push_edge(v, v + 1);
        }
        b.push_edge(0, 30); // a chord to vary degrees
        let g = b.build();
        let (_, trace) = run_pagerank(&g, &ExecutionConfig::default());
        let af = trace.active_fraction();
        assert_eq!(af[0], 1.0);
        assert!(trace.converged);
        assert!(af[af.len() - 1] < 1.0);
    }

    #[test]
    fn ereads_track_active_degree() {
        let g = lollipop(); // degree sum 10
        let (_, trace) = run_pagerank(&g, &ExecutionConfig::default());
        // First iteration: everything active → exactly one read per
        // directed adjacency slot.
        assert_eq!(trace.iterations[0].edge_reads, 10);
    }

    #[test]
    fn looser_tolerance_converges_faster() {
        let mut b = GraphBuilder::undirected(40);
        for v in 0..39u32 {
            b.push_edge(v, v + 1);
        }
        let g = b.build();
        let cfg = ExecutionConfig::default();
        let (_, loose) = run_pagerank_with_tolerance(&g, 1e-2, &cfg);
        let (_, tight) = run_pagerank_with_tolerance(&g, 1e-8, &cfg);
        assert!(loose.num_iterations() < tight.num_iterations());
    }
}
