//! Tiny dense linear algebra for the CF algorithms.
//!
//! ALS solves one `D × D` positive-definite system per vertex per iteration
//! (D = latent factor rank, 8 by default); this module provides the Cholesky
//! solve plus the handful of vector helpers the matrix-factorization
//! programs share. Everything is `f64` and allocation-free on the hot path.

/// Latent-factor rank used by the CF algorithm suite.
pub const FACTOR_DIM: usize = 8;

/// A latent-factor vector.
pub type Factor = [f64; FACTOR_DIM];

/// Dot product of two factors.
#[inline]
pub fn dot(a: &Factor, b: &Factor) -> f64 {
    let mut s = 0.0;
    for i in 0..FACTOR_DIM {
        s += a[i] * b[i];
    }
    s
}

/// `a += scale * b`.
#[inline]
pub fn axpy(a: &mut Factor, scale: f64, b: &Factor) {
    for i in 0..FACTOR_DIM {
        a[i] += scale * b[i];
    }
}

/// Euclidean norm of the difference of two factors.
#[inline]
pub fn distance(a: &Factor, b: &Factor) -> f64 {
    let mut s = 0.0;
    for i in 0..FACTOR_DIM {
        let d = a[i] - b[i];
        s += d * d;
    }
    s.sqrt()
}

/// Rank-1 update: `m += v vᵀ` on a row-major `D × D` matrix.
#[inline]
pub fn rank_one_update(m: &mut [f64; FACTOR_DIM * FACTOR_DIM], v: &Factor) {
    for i in 0..FACTOR_DIM {
        for j in 0..FACTOR_DIM {
            m[i * FACTOR_DIM + j] += v[i] * v[j];
        }
    }
}

/// Solve `(A + ridge·I) x = b` for symmetric positive-definite `A` via
/// Cholesky decomposition. Returns `None` when the matrix is not positive
/// definite even after ridging (callers fall back to keeping their old
/// factors).
pub fn cholesky_solve(
    a: &[f64; FACTOR_DIM * FACTOR_DIM],
    b: &Factor,
    ridge: f64,
) -> Option<Factor> {
    const D: usize = FACTOR_DIM;
    // L is lower-triangular, built in place.
    let mut l = [0.0f64; D * D];
    for i in 0..D {
        for j in 0..=i {
            let mut sum = a[i * D + j];
            if i == j {
                sum += ridge;
            }
            for k in 0..j {
                sum -= l[i * D + k] * l[j * D + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * D + j] = sum.sqrt();
            } else {
                l[i * D + j] = sum / l[j * D + j];
            }
        }
    }
    // Forward substitution: L y = b.
    let mut y = [0.0f64; D];
    for i in 0..D {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * D + k] * y[k];
        }
        y[i] = sum / l[i * D + i];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = [0.0f64; D];
    for i in (0..D).rev() {
        let mut sum = y[i];
        for k in (i + 1)..D {
            sum -= l[k * D + i] * x[k];
        }
        x[i] = sum / l[i * D + i];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        let mut a = [1.0; FACTOR_DIM];
        let b = [2.0; FACTOR_DIM];
        assert_eq!(dot(&a, &b), 16.0);
        axpy(&mut a, 0.5, &b);
        assert_eq!(a, [2.0; FACTOR_DIM]);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = [0.0; FACTOR_DIM];
        let mut b = [0.0; FACTOR_DIM];
        b[0] = 3.0;
        b[1] = 4.0;
        assert!((distance(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_solves_identity() {
        let mut a = [0.0f64; FACTOR_DIM * FACTOR_DIM];
        for i in 0..FACTOR_DIM {
            a[i * FACTOR_DIM + i] = 1.0;
        }
        let b: Factor = std::array::from_fn(|i| i as f64);
        let x = cholesky_solve(&a, &b, 0.0).unwrap();
        for i in 0..FACTOR_DIM {
            assert!((x[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = G Gᵀ + I with random-ish G is SPD; verify residual.
        let mut g = [0.0f64; FACTOR_DIM * FACTOR_DIM];
        for i in 0..FACTOR_DIM {
            for j in 0..FACTOR_DIM {
                g[i * FACTOR_DIM + j] = ((i * 7 + j * 3) % 5) as f64 - 2.0;
            }
        }
        let mut a = [0.0f64; FACTOR_DIM * FACTOR_DIM];
        for i in 0..FACTOR_DIM {
            for j in 0..FACTOR_DIM {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..FACTOR_DIM {
                    s += g[i * FACTOR_DIM + k] * g[j * FACTOR_DIM + k];
                }
                a[i * FACTOR_DIM + j] = s;
            }
        }
        let b: Factor = std::array::from_fn(|i| (i as f64).sin());
        let x = cholesky_solve(&a, &b, 0.0).unwrap();
        // Residual A x - b should vanish.
        for i in 0..FACTOR_DIM {
            let mut r = -b[i];
            for j in 0..FACTOR_DIM {
                r += a[i * FACTOR_DIM + j] * x[j];
            }
            assert!(r.abs() < 1e-9, "row {i}: residual {r}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = [0.0f64; FACTOR_DIM * FACTOR_DIM];
        a[0] = -1.0; // negative leading pivot
        for i in 1..FACTOR_DIM {
            a[i * FACTOR_DIM + i] = 1.0;
        }
        assert!(cholesky_solve(&a, &[1.0; FACTOR_DIM], 0.0).is_none());
    }

    #[test]
    fn ridge_rescues_singular() {
        let a = [0.0f64; FACTOR_DIM * FACTOR_DIM]; // all-zero: singular
        assert!(cholesky_solve(&a, &[1.0; FACTOR_DIM], 0.0).is_none());
        assert!(cholesky_solve(&a, &[1.0; FACTOR_DIM], 0.1).is_some());
    }

    #[test]
    fn rank_one_accumulates() {
        let mut m = [0.0f64; FACTOR_DIM * FACTOR_DIM];
        let mut v = [0.0f64; FACTOR_DIM];
        v[0] = 2.0;
        v[1] = 3.0;
        rank_one_update(&mut m, &v);
        assert_eq!(m[0], 4.0);
        assert_eq!(m[1], 6.0);
        assert_eq!(m[FACTOR_DIM], 6.0);
        assert_eq!(m[FACTOR_DIM + 1], 9.0);
    }
}
