//! Optimization-theoretic invariants of the iterative algorithms: each
//! learner's objective must improve as its iteration budget grows, and
//! solver errors must shrink the way the underlying theory says they do.

use graphmine_algos::als::{rmse, run_als};
use graphmine_algos::jacobi::run_jacobi;
use graphmine_algos::kmeans::run_kmeans;
use graphmine_algos::lbp::run_lbp;
use graphmine_algos::nmf::run_nmf;
use graphmine_algos::sgd::run_sgd;
use graphmine_engine::ExecutionConfig;
use graphmine_gen::{
    gaussian_points, matrix_graph, powerlaw_graph, BipartiteConfig, GridMrf, PowerLawConfig,
    RatingGraph,
};

fn ratings() -> RatingGraph {
    RatingGraph::generate(&BipartiteConfig::new(2_000, 2.5, 99))
}

fn cfg(iters: usize) -> ExecutionConfig {
    ExecutionConfig::with_max_iterations(iters)
}

#[test]
fn als_rmse_improves_with_budget() {
    let rg = ratings();
    let errs: Vec<f64> = [2usize, 6, 20]
        .iter()
        .map(|&k| {
            let (factors, _) = run_als(&rg, &cfg(k));
            rmse(&rg.graph, &rg.ratings, &factors)
        })
        .collect();
    assert!(
        errs[2] <= errs[1] + 1e-6 && errs[1] <= errs[0] + 1e-6,
        "ALS RMSE not improving: {errs:?}"
    );
}

#[test]
fn nmf_rmse_improves_with_budget() {
    let rg = ratings();
    let errs: Vec<f64> = [2usize, 8, 20]
        .iter()
        .map(|&k| {
            let (factors, _) = run_nmf(&rg, &cfg(k));
            rmse(&rg.graph, &rg.ratings, &factors)
        })
        .collect();
    // Simultaneous multiplicative updates are approximately monotone;
    // allow 2% slack per comparison.
    assert!(
        errs[2] <= errs[0] * 1.02,
        "NMF RMSE not improving: {errs:?}"
    );
}

#[test]
fn sgd_rmse_improves_with_budget() {
    let rg = ratings();
    let errs: Vec<f64> = [1usize, 5, 20]
        .iter()
        .map(|&k| {
            let (factors, _) = run_sgd(&rg, &cfg(k));
            rmse(&rg.graph, &rg.ratings, &factors)
        })
        .collect();
    assert!(errs[2] < errs[0], "SGD RMSE not improving: {errs:?}");
}

#[test]
fn kmeans_reduces_within_cluster_scatter() {
    let graph = powerlaw_graph(&PowerLawConfig::new(3_000, 2.5, 4));
    let points = gaussian_points(graph.num_vertices(), 4);
    let k = 4usize;
    let wcss = |assign: &[u32]| -> f64 {
        let mut sums = vec![[0.0f64; 2]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(assign.iter()) {
            sums[a as usize][0] += p[0];
            sums[a as usize][1] += p[1];
            counts[a as usize] += 1;
        }
        let centroids: Vec<[f64; 2]> = sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| {
                if c > 0 {
                    [s[0] / c as f64, s[1] / c as f64]
                } else {
                    [0.0, 0.0]
                }
            })
            .collect();
        points
            .iter()
            .zip(assign.iter())
            .map(|(p, &a)| {
                let c = centroids[a as usize];
                (p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2)
            })
            .sum()
    };
    let initial: Vec<u32> = (0..graph.num_vertices()).map(|v| (v % k) as u32).collect();
    let (assign, trace) = run_kmeans(&graph, &points, k, &cfg(100));
    assert!(trace.num_iterations() >= 2);
    assert!(
        wcss(&assign) < wcss(&initial) * 0.9,
        "K-Means did not reduce scatter: {} vs {}",
        wcss(&assign),
        wcss(&initial)
    );
}

#[test]
fn jacobi_error_decays_geometrically() {
    let sys = matrix_graph(200, 6, 11);
    let residual_after = |k: usize| -> f64 {
        let (x, _) = run_jacobi(&sys, &cfg(k));
        sys.residual(&x)
    };
    let r5 = residual_after(5);
    let r10 = residual_after(10);
    let r20 = residual_after(20);
    assert!(r10 < r5 * 0.5, "r5 {r5} r10 {r10}");
    assert!(r20 < r10 * 0.5, "r10 {r10} r20 {r20}");
}

#[test]
fn lbp_beliefs_stay_normalized_and_labels_stabilize() {
    let mrf = GridMrf::generate(10, 2, 21);
    let (labels_a, trace) = run_lbp(&mrf, &cfg(300));
    assert!(trace.converged, "LBP did not converge");
    // Re-running with a larger budget changes nothing once converged.
    let (labels_b, _) = run_lbp(&mrf, &cfg(600));
    assert_eq!(labels_a, labels_b);
}
