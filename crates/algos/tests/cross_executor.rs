//! Cross-executor parity on realistic workloads.
//!
//! The paper's premise (§3.3) is that behavior is a property of the
//! *computation*, not the execution engine: "the basic behavior of graph
//! computation is conserved" across computation models. These tests pin
//! that down for the three executors — synchronous vertex-centric,
//! asynchronous queue-driven, and edge-centric streaming — and double as
//! the guard rail for the frontier-aware engine refactor: CC and SSSP are
//! exactly the sparse-frontier algorithms whose active sets collapse to a
//! trickle, so they exercise the sparse path hard on a graph big enough
//! (~50k vertices) that chunked parallelism and the adaptive threshold both
//! engage.

use graphmine_algos::cc::ConnectedComponents;
use graphmine_algos::sssp::{dijkstra, ShortestPath};
use graphmine_algos::{
    run_algorithm, run_algorithm_digest, AlgorithmKind, Domain, SuiteConfig, Workload,
};
use graphmine_engine::{
    async_run, edge_centric_run, AsyncConfig, DirectionChoice, DirectionMode, EdgeCentricConfig,
    ExecutionConfig, FrontierMode, IterationStats, NoGlobal, RunTrace, SyncEngine,
    SPARSE_FRONTIER_THRESHOLD,
};
use graphmine_gen::{gaussian_edge_weights, powerlaw_graph, PowerLawConfig};
use graphmine_graph::{Graph, Representation};

/// A ~50k-vertex scale-free graph (mean degree 16 ⇒ 400k edges / 8).
fn big_powerlaw() -> Graph {
    powerlaw_graph(&PowerLawConfig::new(400_000, 2.5, 42))
}

fn strip(t: &RunTrace) -> Vec<IterationStats> {
    t.iterations
        .iter()
        .map(IterationStats::normalized)
        .collect()
}

#[test]
fn cc_final_states_agree_across_executors() {
    let g = big_powerlaw();
    let n = g.num_vertices();
    assert!(n >= 40_000, "graph too small to exercise chunking: {n}");
    let init: Vec<u32> = (0..n as u32).collect();
    let edge_data = vec![(); g.num_edges()];

    let (sync_labels, sync_trace) =
        SyncEngine::new(&g, ConnectedComponents, init.clone(), edge_data.clone())
            .run(&ExecutionConfig::default());
    assert!(sync_trace.converged);

    let (async_labels, _) = async_run(
        &g,
        &ConnectedComponents,
        init.clone(),
        edge_data.clone(),
        NoGlobal,
        &AsyncConfig::default(),
    );
    let (ec_labels, ec_trace) = edge_centric_run(
        &g,
        &ConnectedComponents,
        init,
        &edge_data,
        NoGlobal,
        &EdgeCentricConfig::default(),
    );
    assert!(ec_trace.converged);

    // Min-label is order-insensitive, so all three executors must land on
    // the identical fixed point.
    assert_eq!(sync_labels, async_labels);
    assert_eq!(sync_labels, ec_labels);
}

#[test]
fn sssp_final_states_agree_across_executors_and_match_dijkstra() {
    let g = big_powerlaw();
    let n = g.num_vertices();
    let weights = gaussian_edge_weights(g.num_edges(), 7);
    let source = 0u32;
    let init = vec![f64::INFINITY; n];

    let (sync_dist, sync_trace) =
        SyncEngine::new(&g, ShortestPath { source }, init.clone(), weights.clone())
            .run(&ExecutionConfig::default());
    assert!(sync_trace.converged);

    let (async_dist, _) = async_run(
        &g,
        &ShortestPath { source },
        init.clone(),
        weights.clone(),
        NoGlobal,
        &AsyncConfig::default(),
    );
    let (ec_dist, ec_trace) = edge_centric_run(
        &g,
        &ShortestPath { source },
        init,
        &weights,
        NoGlobal,
        &EdgeCentricConfig::default(),
    );
    assert!(ec_trace.converged);

    // Distance relaxation computes every candidate as the same hop-by-hop
    // sum regardless of executor, and min-combining is exact on f64, so
    // parity is bitwise, not approximate.
    assert_eq!(sync_dist, async_dist);
    assert_eq!(sync_dist, ec_dist);
    assert_eq!(sync_dist, dijkstra(&g, &weights, source));

    // SSSP's frontier collapses far below the adaptive threshold in its
    // tail — the whole point of the sparse path. Make sure this workload
    // actually exercised it.
    assert!(sync_trace.sparse_iterations(SPARSE_FRONTIER_THRESHOLD) > 0);
}

/// Behavior counters must be byte-for-byte identical between the dense and
/// adaptive frontier paths on the full 14-algorithm suite: the frontier
/// representation is a mechanical speedup, never a semantic change.
#[test]
fn frontier_mode_preserves_counters_on_full_suite() {
    let pl = Workload::powerlaw(20_000, 2.5, 11);
    let ratings = Workload::ratings(8_000, 2.5, 12);
    let matrix = Workload::matrix(300, 13);
    let grid = Workload::grid(12, 14);
    let mrf = Workload::mrf(1_000, 15);

    let config_with = |mode: FrontierMode| SuiteConfig {
        exec: ExecutionConfig::with_max_iterations(60).with_frontier_mode(mode),
        ..SuiteConfig::default()
    };

    for alg in AlgorithmKind::ALL {
        let workload = match alg.domain() {
            Domain::GraphAnalytics | Domain::Clustering => &pl,
            Domain::CollaborativeFiltering => &ratings,
            Domain::LinearSolver => &matrix,
            Domain::GraphicalModel => {
                if alg == AlgorithmKind::Lbp {
                    &grid
                } else {
                    &mrf
                }
            }
        };
        let dense = run_algorithm(alg, workload, &config_with(FrontierMode::Dense))
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
        let adaptive = run_algorithm(alg, workload, &config_with(FrontierMode::Adaptive))
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
        assert_eq!(
            strip(&dense),
            strip(&adaptive),
            "{alg}: dense vs adaptive counters diverged"
        );
        assert_eq!(dense.converged, adaptive.converged, "{alg}: convergence");
    }
}

/// Delta-varint compressed adjacency must be invisible to every
/// algorithm: across the full 14-algorithm suite and all three scatter
/// modes, the final result (labels, distances, factors, …) must be
/// **bit-identical** between `Plain` and `Compressed` — the engine
/// traverses both through the same `incident()` iterator in the same
/// order, so even non-associative f64 reductions agree exactly.
#[test]
fn compressed_representation_is_bit_identical_on_full_suite() {
    let pl = Workload::powerlaw(20_000, 2.5, 11);
    let ratings = Workload::ratings(8_000, 2.5, 12);
    let matrix = Workload::matrix(300, 13);
    let grid = Workload::grid(12, 14);
    let mrf = Workload::mrf(1_000, 15);

    let config_with = |dir: DirectionMode| SuiteConfig {
        exec: ExecutionConfig::with_max_iterations(40).with_direction(dir),
        ..SuiteConfig::default()
    };

    for plain in [&pl, &ratings, &matrix, &grid, &mrf] {
        let compressed = plain
            .with_representation(Representation::Compressed)
            .expect("suite workloads have sorted rows");
        assert_eq!(
            compressed.graph().representation(),
            Representation::Compressed
        );
        // The compressed rows must genuinely shrink the neighbor payload
        // (guards against a silent fall-back to plain).
        let plain_bytes = plain
            .graph()
            .neighbor_payload_bytes(graphmine_graph::Direction::Out);
        let packed_bytes = compressed
            .graph()
            .neighbor_payload_bytes(graphmine_graph::Direction::Out);
        assert!(
            packed_bytes < plain_bytes,
            "compression did not shrink payload: {packed_bytes} vs {plain_bytes}"
        );
        for alg in AlgorithmKind::ALL {
            let expected = match alg.domain() {
                Domain::GraphAnalytics | Domain::Clustering => &pl,
                Domain::CollaborativeFiltering => &ratings,
                Domain::LinearSolver => &matrix,
                Domain::GraphicalModel => {
                    if alg == AlgorithmKind::Lbp {
                        &grid
                    } else {
                        &mrf
                    }
                }
            };
            if !std::ptr::eq(expected as *const _, plain as *const _) {
                continue;
            }
            for dir in [
                DirectionMode::Push,
                DirectionMode::Pull,
                DirectionMode::Auto,
            ] {
                let (d_plain, t_plain) = run_algorithm_digest(alg, plain, &config_with(dir))
                    .unwrap_or_else(|e| panic!("{alg}: {e}"));
                let (d_packed, t_packed) =
                    run_algorithm_digest(alg, &compressed, &config_with(dir))
                        .unwrap_or_else(|e| panic!("{alg}: {e}"));
                assert_eq!(
                    d_plain, d_packed,
                    "{alg} ({dir:?}): plain vs compressed results diverged"
                );
                assert_eq!(
                    t_plain.without_wall_clock(),
                    t_packed.without_wall_clock(),
                    "{alg} ({dir:?}): plain vs compressed counters diverged"
                );
            }
        }
    }
}

/// The cache-blocking segment size must never change results: segments
/// only group destination chunks into tasks, and chunks inside a segment
/// process in the same ascending order with unchanged per-chunk merge
/// order. Referenced by the `ExecutionConfig::segment_bytes` docs.
#[test]
fn segment_bytes_is_bit_identical() {
    let pl = Workload::powerlaw(20_000, 2.5, 11);
    let compressed = pl
        .with_representation(Representation::Compressed)
        .expect("power-law has sorted rows");
    let config_with = |bytes: usize| SuiteConfig {
        exec: ExecutionConfig::with_max_iterations(40)
            .with_direction(DirectionMode::Auto)
            .with_segment_bytes(bytes),
        ..SuiteConfig::default()
    };
    for alg in [AlgorithmKind::Pr, AlgorithmKind::Sssp, AlgorithmKind::Cc] {
        for workload in [&pl, &compressed] {
            // 0 clamps to one chunk per task; 1 MiB spans many chunks; the
            // default sits between.
            let digests: Vec<u64> = [0usize, 16 * 1024, 256 * 1024, 1024 * 1024]
                .into_iter()
                .map(|bytes| {
                    run_algorithm_digest(alg, workload, &config_with(bytes))
                        .unwrap_or_else(|e| panic!("{alg}: {e}"))
                        .0
                })
                .collect();
            assert!(
                digests.windows(2).all(|w| w[0] == w[1]),
                "{alg}: segment size changed results: {digests:?}"
            );
        }
    }
}

/// Forced-`Push`, forced-`Pull`, and `Auto` scatter must produce
/// bit-identical normalized traces on the full 14-algorithm suite: the
/// scatter direction is a mechanical speedup, never a semantic change.
/// (Programs without an out-edge scatter fall back to push in every mode,
/// which makes the identity trivially — and deliberately — covered too.)
#[test]
fn direction_mode_preserves_counters_on_full_suite() {
    let pl = Workload::powerlaw(20_000, 2.5, 11);
    let ratings = Workload::ratings(8_000, 2.5, 12);
    let matrix = Workload::matrix(300, 13);
    let grid = Workload::grid(12, 14);
    let mrf = Workload::mrf(1_000, 15);

    let config_with = |dir: DirectionMode| SuiteConfig {
        exec: ExecutionConfig::with_max_iterations(60).with_direction(dir),
        ..SuiteConfig::default()
    };

    let mut auto_pulled = false;
    let mut auto_pushed = false;
    for alg in AlgorithmKind::ALL {
        let workload = match alg.domain() {
            Domain::GraphAnalytics | Domain::Clustering => &pl,
            Domain::CollaborativeFiltering => &ratings,
            Domain::LinearSolver => &matrix,
            Domain::GraphicalModel => {
                if alg == AlgorithmKind::Lbp {
                    &grid
                } else {
                    &mrf
                }
            }
        };
        let push = run_algorithm(alg, workload, &config_with(DirectionMode::Push))
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
        let pull = run_algorithm(alg, workload, &config_with(DirectionMode::Pull))
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
        let auto = run_algorithm(alg, workload, &config_with(DirectionMode::Auto))
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
        assert_eq!(
            push.without_wall_clock(),
            pull.without_wall_clock(),
            "{alg}: push vs pull counters diverged"
        );
        assert_eq!(
            push.without_wall_clock(),
            auto.without_wall_clock(),
            "{alg}: push vs auto counters diverged"
        );
        auto_pulled |= auto
            .iterations
            .iter()
            .any(|it| it.direction == DirectionChoice::Pull);
        auto_pushed |= auto
            .iterations
            .iter()
            .any(|it| it.direction == DirectionChoice::Push);
    }
    // The suite must genuinely exercise both paths under Auto: the
    // constant-active programs (PR, KC start) keep dense frontiers that
    // pull, while SSSP/CC tails collapse to push territory.
    assert!(auto_pulled, "Auto never chose pull anywhere in the suite");
    assert!(auto_pushed, "Auto never chose push anywhere in the suite");
}
