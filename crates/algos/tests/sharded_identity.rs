//! Sharded execution must be a pure regrouping of work: for every
//! algorithm of the 14-suite, every direction mode, and every shard
//! count, the per-vertex state digest and the (wall-clock-stripped)
//! behavior counters must be *bit-identical* to the unsharded run.
//!
//! This is the contract that lets the service enable shard-per-core
//! execution for multi-tenant isolation without perturbing the measured
//! behavior the paper's figures are built on — sharding may only change
//! where work happens, never what it computes.

use graphmine_algos::{run_algorithm_digest, AlgorithmKind, Domain, SuiteConfig, Workload};
use graphmine_engine::{DirectionMode, ExecutionConfig};
use graphmine_graph::Representation;
use graphmine_shard::ShardPlan;

const DIRECTIONS: [DirectionMode; 3] = [
    DirectionMode::Push,
    DirectionMode::Pull,
    DirectionMode::Auto,
];

fn config_with(dir: DirectionMode, shards: usize) -> SuiteConfig {
    SuiteConfig {
        exec: ExecutionConfig::with_max_iterations(40)
            .with_direction(dir)
            .with_shards(shards),
        ..SuiteConfig::default()
    }
}

/// The suite's workload for one algorithm, shared across the module.
fn workload_for(alg: AlgorithmKind) -> Workload {
    match alg.domain() {
        Domain::GraphAnalytics | Domain::Clustering => Workload::powerlaw(20_000, 2.5, 11),
        Domain::CollaborativeFiltering => Workload::ratings(8_000, 2.5, 12),
        Domain::LinearSolver => Workload::matrix(300, 13),
        Domain::GraphicalModel => {
            if alg == AlgorithmKind::Lbp {
                Workload::grid(12, 14)
            } else {
                Workload::mrf(1_000, 15)
            }
        }
    }
}

#[test]
fn sharded_runs_are_bit_identical_across_the_suite() {
    let mut checked = 0usize;
    for alg in AlgorithmKind::ALL {
        let workload = workload_for(alg);
        for dir in DIRECTIONS {
            let (d0, t0) = run_algorithm_digest(alg, &workload, &config_with(dir, 0))
                .unwrap_or_else(|e| panic!("{alg}: {e}"));
            for shards in [1usize, 2, 8] {
                let (d, t) = run_algorithm_digest(alg, &workload, &config_with(dir, shards))
                    .unwrap_or_else(|e| panic!("{alg}: {e}"));
                assert_eq!(d0, d, "{alg} ({dir:?}) shards={shards}: digest diverged");
                assert_eq!(
                    t0.without_wall_clock(),
                    t.without_wall_clock(),
                    "{alg} ({dir:?}) shards={shards}: counters diverged"
                );
                checked += 1;
            }
        }
    }
    // 14 algorithms x 3 directions x 3 shard counts.
    assert_eq!(checked, 126);
}

#[test]
fn sharded_runs_are_bit_identical_on_compressed_representation() {
    let compressed = Workload::powerlaw(20_000, 2.5, 11)
        .with_representation(Representation::Compressed)
        .expect("power-law has sorted rows");
    for alg in [AlgorithmKind::Pr, AlgorithmKind::Sssp, AlgorithmKind::Cc] {
        for dir in DIRECTIONS {
            let (d0, _) = run_algorithm_digest(alg, &compressed, &config_with(dir, 0))
                .unwrap_or_else(|e| panic!("{alg}: {e}"));
            for shards in [2usize, 8] {
                let (d, _) = run_algorithm_digest(alg, &compressed, &config_with(dir, shards))
                    .unwrap_or_else(|e| panic!("{alg}: {e}"));
                assert_eq!(
                    d0, d,
                    "{alg} ({dir:?}) compressed shards={shards}: digest diverged"
                );
            }
        }
    }
}

#[test]
fn shard_plan_accounting_counts_traffic_without_changing_results() {
    let workload = Workload::powerlaw(20_000, 2.5, 11);
    let base = || ExecutionConfig::with_max_iterations(40).with_direction(DirectionMode::Push);
    let plain = SuiteConfig {
        exec: base(),
        ..SuiteConfig::default()
    };
    let (d0, _) = run_algorithm_digest(AlgorithmKind::Pr, &workload, &plain).unwrap();
    // The plan must cover the graph's real vertex space (`powerlaw`
    // takes an *edge* count) or every vertex lands in shard 0.
    let plan = ShardPlan::contiguous(workload.graph().num_vertices(), 4);
    // The plan's config is exactly the engine's shard grouping…
    let planned = SuiteConfig {
        exec: plan.config(base()),
        ..SuiteConfig::default()
    };
    let (d1, _) = run_algorithm_digest(AlgorithmKind::Pr, &workload, &planned).unwrap();
    assert_eq!(d0, d1, "plan.config diverged from unsharded digest");
    // …and turning on cross-shard traffic accounting changes only the
    // remote-traffic counters, never the computed states.
    let accounted = SuiteConfig {
        exec: plan.config_with_accounting(base()),
        ..SuiteConfig::default()
    };
    let (d2, trace) = run_algorithm_digest(AlgorithmKind::Pr, &workload, &accounted).unwrap();
    assert_eq!(d0, d2, "accounting perturbed the digest");
    assert!(
        trace.remote_msg() > 0.0,
        "4-shard PageRank should cross shard boundaries"
    );
}
