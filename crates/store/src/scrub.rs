//! Catalog scrub: verify every store file, quarantine corruption,
//! re-pack what has a registered source.
//!
//! A scrub walks every `*.gmg` file in a catalog directory — including
//! files the catalog's own `list()` would skip as unreadable — and runs
//! the full checksum verification on each. Files that fail are renamed to
//! `<file>.corrupt` (quarantine: the catalog stops serving them, but the
//! bytes survive for forensics), and when the store's recorded provenance
//! is an edge-list file that still exists (`source = "edgelist:<path>"`),
//! the graph is re-packed from that source and re-installed under the
//! same name. Orphaned temp siblings from crashed earlier writes
//! (`.*.tmp-*` files) are collected along the way.
//!
//! The sweep is deliberately conservative: a re-pack re-derives columns
//! exactly as the original edge-list pack did (weights from the file,
//! points from the recorded seed), goes through the same
//! pack → deep-verify → rename install pipeline as ingest, and on any
//! failure leaves the quarantined file as the only artifact — a scrub
//! never destroys the last copy of anything.

use crate::catalog::Catalog;
use crate::reader::StoredGraph;
use crate::workload::pack_workload_with;
use crate::StoreError;
use graphmine_algos::Workload;
use graphmine_engine::IoShim;
use graphmine_gen::gaussian_points;
use graphmine_graph::parse_edge_list;
use std::fs::{self, File};
use std::io::BufReader;
use std::path::Path;

/// What the scrub did with one catalog entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrubOutcome {
    /// Every section checksum (and the deep structural validation) passed.
    Clean,
    /// The file failed verification and was renamed to `*.corrupt`; no
    /// usable source was registered, so it could not be re-packed.
    Quarantined {
        /// Damaged sections, or the open/verify error for unreadable files.
        detail: String,
    },
    /// The file was quarantined, then re-packed from its registered
    /// edge-list source and re-installed under the same name.
    Repacked {
        /// Damaged sections that triggered the quarantine.
        detail: String,
    },
}

/// Summary of one scrub sweep over a catalog.
#[derive(Debug, Default)]
pub struct ScrubReport {
    /// Per-file outcomes, in scan order.
    pub entries: Vec<(String, ScrubOutcome)>,
    /// Orphaned temp-sibling files removed from the catalog directory.
    pub orphans_removed: usize,
}

impl ScrubReport {
    /// Number of files scanned.
    pub fn scanned(&self) -> usize {
        self.entries.len()
    }

    /// Number of files that verified clean.
    pub fn clean(&self) -> usize {
        self.count(|o| matches!(o, ScrubOutcome::Clean))
    }

    /// Number of files quarantined without a re-pack.
    pub fn quarantined(&self) -> usize {
        self.count(|o| matches!(o, ScrubOutcome::Quarantined { .. }))
    }

    /// Number of files quarantined and successfully re-packed.
    pub fn repacked(&self) -> usize {
        self.count(|o| matches!(o, ScrubOutcome::Repacked { .. }))
    }

    fn count(&self, f: impl Fn(&ScrubOutcome) -> bool) -> usize {
        self.entries.iter().filter(|(_, o)| f(o)).count()
    }
}

/// Scrub every `*.gmg` file under `catalog`'s directory: verify, quarantine
/// failures to `*.corrupt`, re-pack quarantined graphs whose recorded
/// source (`edgelist:<path>`) still exists, and remove orphaned `.*.tmp-*`
/// siblings left by crashed writes. Durable writes go through `shim`.
pub fn scrub_catalog(catalog: &Catalog, shim: &IoShim) -> Result<ScrubReport, StoreError> {
    let mut report = ScrubReport {
        orphans_removed: gc_orphan_temps(catalog.dir())?,
        ..ScrubReport::default()
    };
    let mut names = Vec::new();
    for entry in fs::read_dir(catalog.dir())? {
        let entry = entry?;
        let path = entry.path();
        if !entry.file_type()?.is_file() {
            continue;
        }
        if path.extension().and_then(|e| e.to_str()) == Some(crate::catalog::STORE_EXT) {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                if Catalog::validate_name(stem).is_ok() {
                    names.push(stem.to_string());
                }
            }
        }
    }
    names.sort();
    for name in names {
        let outcome = scrub_one(catalog, &name, shim)?;
        report.entries.push((name, outcome));
    }
    Ok(report)
}

/// Remove orphaned temp siblings (`.*.tmp*` files left by crashed atomic
/// writes) from `dir`, returning how many were collected. Cheap — no
/// store file is opened or verified — so the service runs it on every
/// start. A missing `dir` counts as zero orphans.
pub fn gc_orphan_temps(dir: &Path) -> Result<usize, StoreError> {
    let mut removed = 0;
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let Some(file_name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if entry.file_type()?.is_file() && file_name.starts_with('.') && file_name.contains(".tmp")
        {
            fs::remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

fn scrub_one(catalog: &Catalog, name: &str, shim: &IoShim) -> Result<ScrubOutcome, StoreError> {
    let path = catalog
        .dir()
        .join(format!("{name}.{}", crate::catalog::STORE_EXT));
    // Open + verify, capturing everything a re-pack needs before the file
    // is renamed away.
    let mut source = None;
    let detail = match StoredGraph::open(&path) {
        Err(e) => format!("unreadable: {e}"),
        Ok(stored) => match stored.verify() {
            Ok(()) => return Ok(ScrubOutcome::Clean),
            Err(e) => {
                // Only trust the recorded provenance if the meta section
                // itself verified — a bit flip there could point the
                // re-pack at the wrong source.
                let meta_damaged = matches!(
                    &e,
                    StoreError::CorruptSection { sections }
                        if sections.iter().any(|s| s == crate::format::SEC_META)
                );
                let meta = stored.meta();
                if !meta_damaged && meta.class == "powerlaw" {
                    if let Some(src) = meta.source.strip_prefix("edgelist:") {
                        source = Some((
                            src.to_string(),
                            stored.header().flags & crate::format::FLAG_DIRECTED != 0,
                            stored.header().num_vertices as usize,
                            meta.seed,
                        ));
                    }
                }
                e.to_string()
            }
        },
    };
    let quarantine = path.with_file_name(format!(
        "{}.corrupt",
        path.file_name().unwrap_or_default().to_string_lossy()
    ));
    fs::rename(&path, &quarantine)?;
    let Some((src, directed, num_vertices, seed)) = source else {
        return Ok(ScrubOutcome::Quarantined { detail });
    };
    match repack_from_edge_list(
        catalog,
        name,
        Path::new(&src),
        directed,
        num_vertices,
        seed,
        shim,
    ) {
        Ok(()) => Ok(ScrubOutcome::Repacked { detail }),
        Err(e) => Ok(ScrubOutcome::Quarantined {
            detail: format!("{detail}; re-pack failed: {e}"),
        }),
    }
}

/// Re-derive the workload from its source edge list exactly as the
/// original `graph pack --input` did, then pack, deep-verify, and install
/// — the same pipeline as ingest finalize.
fn repack_from_edge_list(
    catalog: &Catalog,
    name: &str,
    src: &Path,
    directed: bool,
    num_vertices: usize,
    seed: u64,
    shim: &IoShim,
) -> Result<(), StoreError> {
    let (graph, weights) =
        parse_edge_list(BufReader::new(File::open(src)?), num_vertices, directed)
            .map_err(|e| StoreError::Corrupt(format!("edge list: {e}")))?;
    let points = gaussian_points(graph.num_vertices(), seed);
    let workload = Workload::PowerLaw {
        graph,
        weights,
        points,
    };
    let staging = catalog
        .dir()
        .join(format!(".scrub-{name}.tmp-{}", std::process::id()));
    let result = (|| {
        pack_workload_with(
            &staging,
            &workload,
            &format!("edgelist:{}", src.display()),
            seed,
            shim,
        )?;
        StoredGraph::open(&staging)?.verify()?;
        catalog.install(name, &staging).map(|_| ())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&staging);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::pack_workload;
    use std::io::{Seek, SeekFrom, Write};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphmine-scrub-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn flip_payload_byte(path: &Path) {
        let stored = StoredGraph::open(path).unwrap();
        let sec = stored
            .sections()
            .iter()
            .max_by_key(|s| s.offset)
            .unwrap()
            .clone();
        drop(stored);
        let at = sec.offset + sec.len_bytes / 2;
        let b = fs::read(path).unwrap()[at as usize] ^ 0x10;
        let mut f = fs::OpenOptions::new().write(true).open(path).unwrap();
        f.seek(SeekFrom::Start(at)).unwrap();
        f.write_all(&[b]).unwrap();
    }

    #[test]
    fn clean_catalog_scrubs_clean() {
        let dir = temp_dir("clean");
        let catalog = Catalog::open(dir.join("cat")).unwrap();
        let w = Workload::powerlaw(100, 2.0, 3);
        pack_workload(&catalog.dir().join("a.gmg"), &w, "synthetic:powerlaw", 3).unwrap();
        let report = scrub_catalog(&catalog, &IoShim::disabled()).unwrap();
        assert_eq!(report.scanned(), 1);
        assert_eq!(report.clean(), 1);
        assert_eq!(report.quarantined() + report.repacked(), 0);
        assert!(catalog.get("a").is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_synthetic_graph_is_quarantined() {
        let dir = temp_dir("quarantine");
        let catalog = Catalog::open(dir.join("cat")).unwrap();
        let w = Workload::powerlaw(100, 2.0, 3);
        let path = catalog.dir().join("a.gmg");
        pack_workload(&path, &w, "synthetic:powerlaw", 3).unwrap();
        flip_payload_byte(&path);
        let report = scrub_catalog(&catalog, &IoShim::disabled()).unwrap();
        assert_eq!(report.quarantined(), 1);
        assert!(!path.exists());
        assert!(path.with_file_name("a.gmg.corrupt").exists());
        // The catalog now refuses the name with a typed error.
        assert!(matches!(catalog.get("a"), Err(StoreError::NotFound(_))));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_edgelist_graph_is_repacked_from_source() {
        let dir = temp_dir("repack");
        let catalog = Catalog::open(dir.join("cat")).unwrap();
        let edges = dir.join("edges.txt");
        fs::write(&edges, b"0 1\n1 2\n2 3 0.5\n0 3\n").unwrap();
        let (graph, weights) =
            parse_edge_list(BufReader::new(File::open(&edges).unwrap()), 4, false).unwrap();
        let points = gaussian_points(4, 9);
        let w = Workload::PowerLaw {
            graph,
            weights,
            points,
        };
        let path = catalog.dir().join("g.gmg");
        let fp = pack_workload(&path, &w, &format!("edgelist:{}", edges.display()), 9).unwrap();
        flip_payload_byte(&path);
        let report = scrub_catalog(&catalog, &IoShim::disabled()).unwrap();
        assert_eq!(report.repacked(), 1, "{:?}", report.entries);
        // The quarantined copy survives and the re-packed file verifies
        // with the original fingerprint (same source, same seed).
        assert!(path.with_file_name("g.gmg.corrupt").exists());
        let stored = catalog.get("g").unwrap();
        stored.verify().unwrap();
        assert_eq!(stored.fingerprint(), fp);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_source_degrades_to_quarantine() {
        let dir = temp_dir("nosrc");
        let catalog = Catalog::open(dir.join("cat")).unwrap();
        let w = Workload::powerlaw(80, 2.0, 5);
        let path = catalog.dir().join("a.gmg");
        pack_workload(&path, &w, "edgelist:/no/such/file.txt", 5).unwrap();
        flip_payload_byte(&path);
        let report = scrub_catalog(&catalog, &IoShim::disabled()).unwrap();
        assert_eq!(report.quarantined(), 1);
        let (_, outcome) = &report.entries[0];
        let ScrubOutcome::Quarantined { detail } = outcome else {
            panic!("expected quarantine, got {outcome:?}");
        };
        assert!(detail.contains("re-pack failed"), "{detail}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphan_temp_siblings_are_collected() {
        let dir = temp_dir("orphans");
        let catalog = Catalog::open(dir.join("cat")).unwrap();
        fs::write(catalog.dir().join(".a.gmg.tmp-12345"), b"torn").unwrap();
        fs::write(catalog.dir().join(".ingest-b.tmp-999"), b"stale").unwrap();
        let report = scrub_catalog(&catalog, &IoShim::disabled()).unwrap();
        assert_eq!(report.orphans_removed, 2);
        assert_eq!(report.scanned(), 0);
        assert_eq!(fs::read_dir(catalog.dir()).unwrap().count(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn totally_unreadable_file_is_quarantined_not_crashed() {
        let dir = temp_dir("junk");
        let catalog = Catalog::open(dir.join("cat")).unwrap();
        let path = catalog.dir().join("junk.gmg");
        fs::write(&path, b"not a store at all").unwrap();
        let report = scrub_catalog(&catalog, &IoShim::disabled()).unwrap();
        assert_eq!(report.quarantined(), 1);
        assert!(!path.exists());
        assert!(path.with_file_name("junk.gmg.corrupt").exists());
        fs::remove_dir_all(&dir).ok();
    }
}
