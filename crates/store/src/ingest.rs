//! Resumable chunked ingest sessions.
//!
//! An ingest session owns a directory `<root>/<name>/` holding two files:
//!
//! * `chunks.bin` — the uploaded bytes, appended strictly in sequence;
//! * `state.json` — the journal: the session config plus `next_seq` and
//!   `bytes_received`, rewritten atomically (temp sibling + rename) after
//!   every accepted chunk.
//!
//! The chunk protocol is strictly sequential: a chunk with `seq <
//! next_seq` was already applied and is acknowledged idempotently (the
//! client's retry after a lost response), `seq > next_seq` is a conflict
//! carrying the expected value. Crash safety mirrors the job journal: the
//! data append lands (fsync) before the state file records it, so on
//! reopen `chunks.bin` is truncated back to the journaled length —
//! a half-appended chunk is simply re-uploaded.

use crate::catalog::Catalog;
use crate::json;
use crate::StoreError;
use graphmine_engine::fault::FaultSite;
use graphmine_engine::IoShim;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Immutable parameters of an ingest session, fixed at `begin` time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestConfig {
    /// Catalog name the finalized graph will be installed under.
    pub name: String,
    /// Whether the edge list is directed.
    pub directed: bool,
    /// Declared vertex count; 0 means infer (max endpoint id + 1) at
    /// finalize time.
    pub num_vertices: usize,
    /// Seed for derived columns (edge-list ingests synthesize KM points).
    pub seed: u64,
}

/// Acknowledgement for one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkAck {
    /// The sequence number the session expects next.
    pub next_seq: u64,
    /// Total payload bytes accepted so far.
    pub bytes_received: u64,
    /// True when the chunk had already been applied (idempotent retry).
    pub duplicate: bool,
}

/// A resumable upload session rooted at `<root>/<name>/`.
#[derive(Debug)]
pub struct IngestSession {
    dir: PathBuf,
    config: IngestConfig,
    next_seq: u64,
    bytes_received: u64,
    shim: IoShim,
}

impl IngestSession {
    /// Begin (or resume) the session for `config.name` under `root`.
    ///
    /// If a journal already exists, its recorded config must match
    /// `config` exactly (otherwise [`StoreError::IngestConflict`]), the
    /// data file is truncated back to the journaled byte count, and the
    /// session resumes at the journaled sequence number.
    pub fn begin(root: &Path, config: IngestConfig) -> Result<IngestSession, StoreError> {
        Catalog::validate_name(&config.name)?;
        let dir = root.join(&config.name);
        if dir.join("state.json").is_file() {
            let session = IngestSession::resume(root, &config.name)?;
            if session.config != config {
                return Err(StoreError::IngestConflict(format!(
                    "session `{}` already exists with different parameters",
                    config.name
                )));
            }
            return Ok(session);
        }
        fs::create_dir_all(&dir)?;
        File::create(dir.join("chunks.bin"))?;
        let session = IngestSession {
            dir,
            config,
            next_seq: 0,
            bytes_received: 0,
            shim: IoShim::disabled(),
        };
        session.persist_state()?;
        Ok(session)
    }

    /// Route this session's chunk appends through `shim` (chaos testing).
    pub fn with_shim(mut self, shim: IoShim) -> IngestSession {
        self.shim = shim;
        self
    }

    /// Resume an existing session by name, recovering from a crash
    /// between data append and journal update by truncating the data file
    /// to the journaled length.
    pub fn resume(root: &Path, name: &str) -> Result<IngestSession, StoreError> {
        Catalog::validate_name(name)?;
        let dir = root.join(name);
        let state_path = dir.join("state.json");
        if !state_path.is_file() {
            return Err(StoreError::NotFound(format!("ingest session `{name}`")));
        }
        let text = fs::read_to_string(&state_path)?;
        let bad = || StoreError::Corrupt(format!("ingest state for `{name}` is malformed"));
        let config = IngestConfig {
            name: json::str_field(&text, "name").ok_or_else(bad)?,
            directed: json::bool_field(&text, "directed").ok_or_else(bad)?,
            num_vertices: json::u64_field(&text, "num_vertices").ok_or_else(bad)? as usize,
            seed: json::u64_field(&text, "seed").ok_or_else(bad)?,
        };
        if config.name != name {
            return Err(bad());
        }
        let next_seq = json::u64_field(&text, "next_seq").ok_or_else(bad)?;
        let bytes_received = json::u64_field(&text, "bytes_received").ok_or_else(bad)?;
        let chunks = dir.join("chunks.bin");
        let actual = fs::metadata(&chunks)?.len();
        if actual < bytes_received {
            return Err(StoreError::Corrupt(format!(
                "ingest data for `{name}` shorter ({actual}) than journal ({bytes_received})"
            )));
        }
        if actual > bytes_received {
            // Crash between append and journal update: roll the data file
            // back to the last journaled boundary.
            let f = OpenOptions::new().write(true).open(&chunks)?;
            f.set_len(bytes_received)?;
            f.sync_all()?;
        }
        Ok(IngestSession {
            dir,
            config,
            next_seq,
            bytes_received,
            shim: IoShim::disabled(),
        })
    }

    /// The session config.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// The sequence number expected next.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Total payload bytes accepted so far.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Append one chunk. Strictly sequential; see the module docs for the
    /// idempotency and conflict rules.
    pub fn append_chunk(&mut self, seq: u64, bytes: &[u8]) -> Result<ChunkAck, StoreError> {
        if seq < self.next_seq {
            return Ok(ChunkAck {
                next_seq: self.next_seq,
                bytes_received: self.bytes_received,
                duplicate: true,
            });
        }
        if seq > self.next_seq {
            return Err(StoreError::IngestConflict(format!(
                "chunk seq {seq} out of order, expected {}",
                self.next_seq
            )));
        }
        let mut f = OpenOptions::new()
            .append(true)
            .open(self.dir.join("chunks.bin"))?;
        // An injected fault here (torn append, ENOSPC, failed sync) leaves
        // the journal un-advanced, so resume truncates the data file back
        // to the last acknowledged boundary and the client re-uploads.
        self.shim
            .append(FaultSite::IngestChunk, Some(seq), &mut f, bytes)?;
        f.sync_data()?;
        self.next_seq += 1;
        self.bytes_received += bytes.len() as u64;
        self.persist_state()?;
        Ok(ChunkAck {
            next_seq: self.next_seq,
            bytes_received: self.bytes_received,
            duplicate: false,
        })
    }

    /// Path of the accumulated data file.
    pub fn data_path(&self) -> PathBuf {
        self.dir.join("chunks.bin")
    }

    /// Tear the session down, consuming it and removing its directory.
    /// Used after a successful finalize, or to abort an upload.
    pub fn discard(self) -> Result<(), StoreError> {
        fs::remove_dir_all(&self.dir)?;
        Ok(())
    }

    fn persist_state(&self) -> Result<(), StoreError> {
        let mut w = json::ObjWriter::new();
        w.str_field("name", &self.config.name);
        w.bool_field("directed", self.config.directed);
        w.u64_field("num_vertices", self.config.num_vertices as u64);
        w.u64_field("seed", self.config.seed);
        w.u64_field("next_seq", self.next_seq);
        w.u64_field("bytes_received", self.bytes_received);
        let body = w.finish();
        let path = self.dir.join("state.json");
        let tmp = self.dir.join(".state.json.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(())
    }
}

/// Default age after which an untouched ingest session expires (the
/// journal's mtime advances on every accepted chunk, so only genuinely
/// abandoned uploads age out).
pub const DEFAULT_INGEST_EXPIRY: Duration = Duration::from_secs(7 * 24 * 60 * 60);

/// Result of an ingest-root garbage-collection sweep.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IngestGcReport {
    /// Session directories removed (expired or missing their journal).
    pub sessions_removed: usize,
    /// Orphaned temp files removed (crashed journal rewrites).
    pub temp_files_removed: usize,
}

/// Sweep the ingest root: remove orphaned `.state.json.tmp` files left by
/// crashed journal rewrites, session directories whose journal is missing
/// entirely (a crash between `create_dir_all` and the first state write),
/// and sessions whose journal has not been touched for `max_age`. The
/// service runs this on every start; a missing root is a no-op.
pub fn gc_sessions(root: &Path, max_age: Duration) -> Result<IngestGcReport, StoreError> {
    let mut report = IngestGcReport::default();
    let entries = match fs::read_dir(root) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e.into()),
    };
    let now = SystemTime::now();
    for entry in entries {
        let entry = entry?;
        let dir = entry.path();
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let tmp = dir.join(".state.json.tmp");
        if tmp.is_file() {
            fs::remove_file(&tmp)?;
            report.temp_files_removed += 1;
        }
        let state = dir.join("state.json");
        let expired = match fs::metadata(&state) {
            Err(_) => true, // no journal: debris from a crashed begin
            Ok(meta) => meta
                .modified()
                .ok()
                .and_then(|m| now.duration_since(m).ok())
                .is_some_and(|age| age >= max_age),
        };
        if expired {
            fs::remove_dir_all(&dir)?;
            report.sessions_removed += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphmine-ingest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn config(name: &str) -> IngestConfig {
        IngestConfig {
            name: name.to_string(),
            directed: false,
            num_vertices: 10,
            seed: 7,
        }
    }

    #[test]
    fn sequential_chunks_accumulate() {
        let root = temp_root("seq");
        let mut s = IngestSession::begin(&root, config("g")).unwrap();
        let a = s.append_chunk(0, b"0 1\n").unwrap();
        assert_eq!(a.next_seq, 1);
        assert!(!a.duplicate);
        let b = s.append_chunk(1, b"1 2\n").unwrap();
        assert_eq!(b.bytes_received, 8);
        assert_eq!(fs::read(s.data_path()).unwrap(), b"0 1\n1 2\n");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn duplicate_chunk_is_idempotent_and_gap_conflicts() {
        let root = temp_root("dup");
        let mut s = IngestSession::begin(&root, config("g")).unwrap();
        s.append_chunk(0, b"0 1\n").unwrap();
        let dup = s.append_chunk(0, b"0 1\n").unwrap();
        assert!(dup.duplicate);
        assert_eq!(dup.bytes_received, 4);
        assert!(matches!(
            s.append_chunk(5, b"x"),
            Err(StoreError::IngestConflict(_))
        ));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn resume_recovers_from_torn_append() {
        let root = temp_root("torn");
        let mut s = IngestSession::begin(&root, config("g")).unwrap();
        s.append_chunk(0, b"0 1\n").unwrap();
        let data = s.data_path();
        drop(s);
        // Simulate a crash after the append but before the journal update.
        let mut f = OpenOptions::new().append(true).open(&data).unwrap();
        f.write_all(b"partial garbage").unwrap();
        drop(f);
        let s = IngestSession::resume(&root, "g").unwrap();
        assert_eq!(s.next_seq(), 1);
        assert_eq!(s.bytes_received(), 4);
        assert_eq!(fs::read(s.data_path()).unwrap(), b"0 1\n");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn begin_resumes_matching_config_and_rejects_mismatch() {
        let root = temp_root("match");
        let mut s = IngestSession::begin(&root, config("g")).unwrap();
        s.append_chunk(0, b"0 1\n").unwrap();
        drop(s);
        let resumed = IngestSession::begin(&root, config("g")).unwrap();
        assert_eq!(resumed.next_seq(), 1);
        let mut other = config("g");
        other.directed = true;
        assert!(matches!(
            IngestSession::begin(&root, other),
            Err(StoreError::IngestConflict(_))
        ));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn names_are_validated() {
        let root = temp_root("names");
        assert!(matches!(
            IngestSession::begin(&root, config("../evil")),
            Err(StoreError::InvalidName(_))
        ));
        assert!(matches!(
            IngestSession::resume(&root, "no-such"),
            Err(StoreError::NotFound(_))
        ));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn injected_chunk_fault_is_recovered_by_resume() {
        use graphmine_engine::{FaultKind, FaultPlan};
        use std::sync::Arc;
        let root = temp_root("chunkfault");
        let plan = FaultPlan::new();
        plan.arm(FaultSite::IngestChunk, 1, FaultKind::TornWrite);
        let shim = IoShim::armed(Arc::new(plan));
        let mut s = IngestSession::begin(&root, config("g"))
            .unwrap()
            .with_shim(shim);
        s.append_chunk(0, b"0 1\n").unwrap();
        // The torn append persists a prefix of the chunk but fails, so the
        // journal never advances past it.
        assert!(s.append_chunk(1, b"1 2\n").is_err());
        drop(s);
        let mut s = IngestSession::resume(&root, "g").unwrap();
        assert_eq!(s.next_seq(), 1);
        assert_eq!(fs::read(s.data_path()).unwrap(), b"0 1\n");
        // The client's retry of the same chunk now lands cleanly.
        let ack = s.append_chunk(1, b"1 2\n").unwrap();
        assert_eq!(ack.next_seq, 2);
        assert_eq!(fs::read(s.data_path()).unwrap(), b"0 1\n1 2\n");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn gc_removes_orphans_debris_and_expired_sessions() {
        let root = temp_root("gc");
        // Live session: journal present and fresh.
        let mut live = IngestSession::begin(&root, config("live")).unwrap();
        live.append_chunk(0, b"0 1\n").unwrap();
        // Crashed journal rewrite: stale temp next to a fresh journal.
        fs::write(root.join("live").join(".state.json.tmp"), b"{}").unwrap();
        // Debris: a session dir that never got its first journal write.
        fs::create_dir_all(root.join("debris")).unwrap();
        fs::write(root.join("debris").join("chunks.bin"), b"").unwrap();
        let report = gc_sessions(&root, Duration::from_secs(3600)).unwrap();
        assert_eq!(report.sessions_removed, 1);
        assert_eq!(report.temp_files_removed, 1);
        assert!(!root.join("debris").exists());
        assert!(IngestSession::resume(&root, "live").is_ok());
        // With a zero max-age, the fresh session expires too.
        let report = gc_sessions(&root, Duration::ZERO).unwrap();
        assert_eq!(report.sessions_removed, 1);
        assert!(matches!(
            IngestSession::resume(&root, "live"),
            Err(StoreError::NotFound(_))
        ));
        // A missing root is a no-op.
        fs::remove_dir_all(&root).ok();
        assert_eq!(
            gc_sessions(&root, Duration::ZERO).unwrap(),
            IngestGcReport::default()
        );
    }

    #[test]
    fn discard_removes_session_dir() {
        let root = temp_root("discard");
        let s = IngestSession::begin(&root, config("g")).unwrap();
        let dir = s.data_path().parent().unwrap().to_path_buf();
        s.discard().unwrap();
        assert!(!dir.exists());
        fs::remove_dir_all(&root).ok();
    }
}
