//! Self-contained XXH64 implementation.
//!
//! The store checksums every section with XXH64 (the same algorithm the
//! LMDB/zstd/lz4 ecosystems use for frame integrity): non-cryptographic,
//! a few bytes of state, and fast enough (~GB/s scalar) that verifying a
//! packed graph is I/O-bound. Implemented here directly from the xxHash
//! specification because the workspace deliberately carries no external
//! hashing dependency.

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte read"))
}

#[inline]
fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte read"))
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

/// XXH64 of `data` with the given seed.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let mut rest = data;
    let mut h = if data.len() >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(rest, 0));
            v2 = round(v2, read_u64(rest, 8));
            v3 = round(v3, read_u64(rest, 16));
            v4 = round(v4, read_u64(rest, 24));
            rest = &rest[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(P5)
    };
    h = h.wrapping_add(data.len() as u64);
    while rest.len() >= 8 {
        h ^= round(0, read_u64(rest, 0));
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= (read_u32(rest, 0) as u64).wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        rest = &rest[4..];
    }
    for &b in rest {
        h ^= (b as u64).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^ (h >> 32)
}

/// Incrementally hash a stream of `u64` words (used for fingerprints over
/// derived values rather than raw bytes).
pub fn xxh64_words(words: &[u64], seed: u64) -> u64 {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    xxh64(&bytes, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_reference_vector() {
        // Reference vector from the xxHash specification.
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
    }

    #[test]
    fn deterministic_and_sensitive() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let h = xxh64(&data, 0);
        assert_eq!(h, xxh64(&data, 0));
        let mut flipped = data.clone();
        flipped[123] ^= 0x01;
        assert_ne!(h, xxh64(&flipped, 0));
        assert_ne!(h, xxh64(&data, 1));
        assert_ne!(h, xxh64(&data[..data.len() - 1], 0));
    }

    #[test]
    fn covers_every_tail_length() {
        // Exercise all `len % 32` tail paths (8-byte, 4-byte, single-byte).
        let base: Vec<u8> = (0..96u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=base.len() {
            assert!(
                seen.insert(xxh64(&base[..len], 7)),
                "collision at len {len}"
            );
        }
    }

    #[test]
    fn word_stream_matches_byte_stream() {
        let words = [1u64, u64::MAX, 0xDEAD_BEEF];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(xxh64_words(&words, 3), xxh64(&bytes, 3));
    }
}
