//! The graph catalog: a directory mapping validated names to store files.
//!
//! A catalog is just a directory of `<name>.gmg` files — no manifest to
//! drift out of sync. Names are restricted to `[A-Za-z0-9_-]{1,64}`
//! (rejecting path traversal from HTTP-supplied names), installs go
//! through `rename` so a catalog never exposes a partially written file,
//! and every entry carries the store fingerprint that the service folds
//! into its cache keys (re-ingesting a name with different content changes
//! the fingerprint and therefore misses the old cache entry). The
//! vertex/edge counts in each entry are what the engine's checkpoint
//! machinery validates on resume, so checkpoints taken against a stored
//! graph remain portable across processes serving the same catalog.

use crate::reader::StoredGraph;
use crate::StoreError;
use std::fs;
use std::path::{Path, PathBuf};

/// File extension of store files inside a catalog.
pub const STORE_EXT: &str = "gmg";

/// A directory of named stored graphs.
#[derive(Debug, Clone)]
pub struct Catalog {
    dir: PathBuf,
}

/// Summary of one catalog entry, cheap to produce (header-only open).
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Graph name (the file stem).
    pub name: String,
    /// Full path of the store file.
    pub path: PathBuf,
    /// Vertex count.
    pub num_vertices: u64,
    /// Edge count.
    pub num_edges: u64,
    /// Whether the graph is directed.
    pub directed: bool,
    /// Workload class name from the meta section.
    pub class: String,
    /// Content fingerprint.
    pub fingerprint: u64,
    /// File size in bytes.
    pub file_bytes: u64,
}

impl Catalog {
    /// Open (creating if needed) the catalog directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Catalog, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Catalog { dir })
    }

    /// The catalog directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Validate a graph name: 1–64 characters from `[A-Za-z0-9_-]`.
    pub fn validate_name(name: &str) -> Result<(), StoreError> {
        let ok = !name.is_empty()
            && name.len() <= 64
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
        if ok {
            Ok(())
        } else {
            Err(StoreError::InvalidName(name.to_string()))
        }
    }

    /// The store file path a name maps to (the name need not exist yet).
    pub fn graph_path(&self, name: &str) -> Result<PathBuf, StoreError> {
        Catalog::validate_name(name)?;
        Ok(self.dir.join(format!("{name}.{STORE_EXT}")))
    }

    /// Whether the named graph exists.
    pub fn contains(&self, name: &str) -> bool {
        self.graph_path(name).map(|p| p.is_file()).unwrap_or(false)
    }

    /// Open the named graph (validated header/TOC/meta, mapped lazily).
    pub fn get(&self, name: &str) -> Result<StoredGraph, StoreError> {
        let path = self.graph_path(name)?;
        if !path.is_file() {
            return Err(StoreError::NotFound(name.to_string()));
        }
        StoredGraph::open(path)
    }

    /// Summarize the named graph.
    pub fn entry(&self, name: &str) -> Result<CatalogEntry, StoreError> {
        let stored = self.get(name)?;
        Ok(entry_from(name, &stored))
    }

    /// Atomically install a finished store file under `name`, replacing
    /// any previous graph of that name. `src` must live on the same
    /// filesystem (in practice: written into the catalog directory as a
    /// temp sibling).
    pub fn install(&self, name: &str, src: &Path) -> Result<CatalogEntry, StoreError> {
        let dst = self.graph_path(name)?;
        // Validate before exposing: a catalog never serves an unopenable
        // file via install.
        let stored = StoredGraph::open(src)?;
        let entry = entry_from(name, &stored);
        drop(stored);
        fs::rename(src, &dst)?;
        Ok(CatalogEntry { path: dst, ..entry })
    }

    /// Remove the named graph.
    pub fn remove(&self, name: &str) -> Result<(), StoreError> {
        let path = self.graph_path(name)?;
        if !path.is_file() {
            return Err(StoreError::NotFound(name.to_string()));
        }
        fs::remove_file(path)?;
        Ok(())
    }

    /// List every readable entry, sorted by name. Unreadable or foreign
    /// files are skipped (a catalog directory may hold ingest scratch
    /// space and temp siblings).
    pub fn list(&self) -> Vec<CatalogEntry> {
        let mut out = Vec::new();
        let Ok(dir) = fs::read_dir(&self.dir) else {
            return out;
        };
        for item in dir.flatten() {
            let path = item.path();
            if path.extension().and_then(|e| e.to_str()) != Some(STORE_EXT) {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if Catalog::validate_name(name).is_err() {
                continue;
            }
            if let Ok(stored) = StoredGraph::open(&path) {
                out.push(entry_from(name, &stored));
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::StoreMeta;
    use crate::writer::write_graph_store;
    use graphmine_graph::GraphBuilder;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphmine-catalog-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn pack_to(path: &Path) -> u64 {
        let mut b = GraphBuilder::undirected(4);
        b.extend_edges([(0, 1), (1, 2), (2, 3)]);
        let graph = b.build();
        let meta = StoreMeta {
            class: "powerlaw".to_string(),
            num_users: 0,
            side: 0,
            num_labels: 0,
            smoothing: 0.0,
            source: "test".to_string(),
            seed: 0,
        };
        write_graph_store(path, &graph, &meta, 0, Vec::new()).unwrap()
    }

    #[test]
    fn install_get_list_remove() {
        let root = temp_dir("basic");
        let catalog = Catalog::open(root.join("cat")).unwrap();
        assert!(catalog.list().is_empty());
        assert!(!catalog.contains("g1"));
        let staged = catalog.dir().join(".staged.tmp");
        let fp = pack_to(&staged);
        let entry = catalog.install("g1", &staged).unwrap();
        assert_eq!(entry.name, "g1");
        assert_eq!(entry.fingerprint, fp);
        assert_eq!(entry.num_vertices, 4);
        assert!(!staged.exists());
        assert!(catalog.contains("g1"));
        let stored = catalog.get("g1").unwrap();
        assert_eq!(stored.fingerprint(), fp);
        let listed = catalog.list();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].name, "g1");
        catalog.remove("g1").unwrap();
        assert!(matches!(catalog.get("g1"), Err(StoreError::NotFound(_))));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn install_rejects_invalid_source_and_leaves_nothing() {
        let root = temp_dir("badsrc");
        let catalog = Catalog::open(root.join("cat")).unwrap();
        let staged = catalog.dir().join(".junk.tmp");
        fs::write(&staged, b"definitely not a store").unwrap();
        assert!(catalog.install("g1", &staged).is_err());
        assert!(!catalog.contains("g1"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn names_are_validated() {
        assert!(Catalog::validate_name("ok_name-123").is_ok());
        for bad in ["", "../up", "a/b", "dot.dot", "space name", &"x".repeat(65)] {
            assert!(
                matches!(Catalog::validate_name(bad), Err(StoreError::InvalidName(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn list_skips_foreign_and_unreadable_files() {
        let root = temp_dir("foreign");
        let catalog = Catalog::open(root.join("cat")).unwrap();
        fs::write(catalog.dir().join("notes.txt"), b"hi").unwrap();
        fs::write(catalog.dir().join("broken.gmg"), b"garbage").unwrap();
        fs::write(catalog.dir().join("bad name.gmg"), b"garbage").unwrap();
        let staged = catalog.dir().join(".staged.tmp");
        pack_to(&staged);
        catalog.install("good", &staged).unwrap();
        let listed = catalog.list();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].name, "good");
        fs::remove_dir_all(&root).ok();
    }
}

fn entry_from(name: &str, stored: &StoredGraph) -> CatalogEntry {
    CatalogEntry {
        name: name.to_string(),
        path: stored.path().to_path_buf(),
        num_vertices: stored.header().num_vertices,
        num_edges: stored.header().num_edges,
        directed: stored.header().flags & crate::format::FLAG_DIRECTED != 0,
        class: stored.meta().class.clone(),
        fingerprint: stored.fingerprint(),
        file_bytes: stored.file_len(),
    }
}
