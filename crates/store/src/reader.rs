//! Memory-mapped store reader exposing zero-copy [`Graph`] views.
//!
//! [`StoredGraph::open`] maps the file and validates everything that can
//! be checked in O(1) page touches: the header (magic, version,
//! endianness, header checksum), every TOC entry's bounds and alignment,
//! the meta section, and the content fingerprint recomputed from the TOC.
//! The data sections themselves are *not* hashed on open — that would page
//! in the whole file and defeat millisecond cold-opens — but every byte of
//! them is covered by per-section checksums that [`StoredGraph::verify`]
//! checks (ingest and the `graphmine graph verify` CLI run it before a
//! file is ever served).
//!
//! [`StoredGraph::load_graph`] hands the mapped CSR arrays to
//! [`Graph::from_parts`] as [`SharedSlice`] views keyed to the mapping's
//! lifetime: no neighbor-array copy, no allocation proportional to graph
//! size.

use crate::format::{
    pair_layout_matches, ElemType, Header, SectionEntry, StoreMeta, FLAG_COMPRESSED, FLAG_DIRECTED,
    FLAG_SORTED_ROWS, HEADER_LEN, SEC_EDGE_LIST, SEC_IN_EDGES, SEC_IN_NBR_DATA, SEC_IN_NBR_OFFSETS,
    SEC_IN_NEIGHBORS, SEC_IN_OFFSETS, SEC_META, SEC_OUT_EDGES, SEC_OUT_NBR_DATA,
    SEC_OUT_NBR_OFFSETS, SEC_OUT_NEIGHBORS, SEC_OUT_OFFSETS, TOC_ENTRY_LEN,
};
use crate::mmap::Mapping;
use crate::xxh::xxh64;
use crate::StoreError;
use graphmine_graph::{Graph, GraphParts, NeighborsPart, SharedSlice, SliceKeeper};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An open, validated, memory-mapped store file.
pub struct StoredGraph {
    path: PathBuf,
    mapping: Arc<Mapping>,
    header: Header,
    sections: Vec<SectionEntry>,
    meta: StoreMeta,
}

impl StoredGraph {
    /// Map `path` and validate header, TOC, meta, and fingerprint (O(1)
    /// page touches; see the module docs for what is deferred to
    /// [`StoredGraph::verify`]).
    pub fn open(path: impl AsRef<Path>) -> Result<StoredGraph, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::NotFound(path.display().to_string())
            } else {
                StoreError::Io(e)
            }
        })?;
        let mapping = Arc::new(Mapping::map_file(&mut file)?);
        drop(file);
        let bytes = mapping.bytes();
        let header = Header::decode(bytes)?;
        if header.file_len != bytes.len() as u64 {
            return Err(StoreError::Truncated {
                needed: header.file_len,
                actual: bytes.len() as u64,
            });
        }
        let toc_end = HEADER_LEN as u64 + header.section_count as u64 * TOC_ENTRY_LEN as u64;
        if (bytes.len() as u64) < toc_end {
            return Err(StoreError::Truncated {
                needed: toc_end,
                actual: bytes.len() as u64,
            });
        }
        let mut sections = Vec::with_capacity(header.section_count as usize);
        for i in 0..header.section_count as usize {
            let at = HEADER_LEN + i * TOC_ENTRY_LEN;
            let entry = SectionEntry::decode(&bytes[at..at + TOC_ENTRY_LEN])?;
            let end = entry.offset.checked_add(entry.len_bytes).ok_or_else(|| {
                StoreError::Corrupt(format!("section `{}` length overflows", entry.name))
            })?;
            if entry.offset < toc_end || end > header.file_len {
                return Err(StoreError::Corrupt(format!(
                    "section `{}` spans {}..{end}, outside data region {toc_end}..{}",
                    entry.name, entry.offset, header.file_len
                )));
            }
            if entry.offset % crate::format::ALIGN != 0 {
                return Err(StoreError::Corrupt(format!(
                    "section `{}` offset {} not {}-byte aligned",
                    entry.name,
                    entry.offset,
                    crate::format::ALIGN
                )));
            }
            if entry.len_bytes % entry.elem.width() != 0 {
                return Err(StoreError::Corrupt(format!(
                    "section `{}` length {} not a multiple of element width {}",
                    entry.name,
                    entry.len_bytes,
                    entry.elem.width()
                )));
            }
            sections.push(entry);
        }
        let expected = crate::format::fingerprint(
            header.num_vertices,
            header.num_edges,
            header.flags,
            header.workload_class,
            sections.iter().map(|e| e.checksum),
        );
        if expected != header.fingerprint {
            return Err(StoreError::Corrupt(format!(
                "fingerprint mismatch: header says {:#018x}, TOC implies {expected:#018x}",
                header.fingerprint
            )));
        }
        let meta_entry = sections
            .iter()
            .find(|e| e.name == SEC_META)
            .cloned()
            .ok_or_else(|| StoreError::Corrupt("missing meta section".to_string()))?;
        let meta = StoreMeta::from_json_bytes(section_bytes(&mapping, &meta_entry))?;
        Ok(StoredGraph {
            path,
            mapping,
            header,
            sections,
            meta,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// The parsed workload metadata.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// The TOC.
    pub fn sections(&self) -> &[SectionEntry] {
        &self.sections
    }

    /// The file this store was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Content fingerprint from the header (validated against the TOC on
    /// open).
    pub fn fingerprint(&self) -> u64 {
        self.header.fingerprint
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.header.file_len
    }

    /// Whether the file is backed by a real kernel mapping (zero heap
    /// copies) rather than the portable read fallback.
    pub fn is_mmap(&self) -> bool {
        self.mapping.is_mmap()
    }

    /// Look up a section by name.
    pub fn section(&self, name: &str) -> Option<&SectionEntry> {
        self.sections.iter().find(|e| e.name == name)
    }

    /// Raw payload bytes of a section.
    pub fn section_payload(&self, entry: &SectionEntry) -> &[u8] {
        section_bytes(&self.mapping, entry)
    }

    /// Hash every section and compare against its recorded checksum, then
    /// load the graph and run its deep structural validation. This is the
    /// thorough pass: it touches every page. Checksum failures are
    /// aggregated across all sections into one
    /// [`StoreError::CorruptSection`] so a scrub can report the full damage
    /// in a single verify.
    pub fn verify(&self) -> Result<(), StoreError> {
        let corrupt = self.triage();
        if !corrupt.is_empty() {
            return Err(StoreError::CorruptSection { sections: corrupt });
        }
        let graph = self.load_graph()?;
        graph.validate().map_err(StoreError::Corrupt)
    }

    /// Hash every section against its recorded checksum and return the
    /// names of those that fail (empty = all payload bytes intact). Unlike
    /// [`StoredGraph::verify`] this never errors and checks *all* sections,
    /// which is what a scrub wants for its damage report.
    pub fn triage(&self) -> Vec<String> {
        self.sections
            .iter()
            .filter(|entry| xxh64(self.section_payload(entry), 0) != entry.checksum)
            .map(|entry| entry.name.clone())
            .collect()
    }

    /// Verify only the named section's checksum. Used by recovery paths
    /// that need one trusted section (e.g. the canonical edge list) out of
    /// an otherwise damaged file.
    pub fn verify_section(&self, name: &str) -> Result<(), StoreError> {
        let entry = self.required(name)?;
        let actual = xxh64(self.section_payload(entry), 0);
        if actual != entry.checksum {
            return Err(StoreError::CorruptSection {
                sections: vec![entry.name.clone()],
            });
        }
        Ok(())
    }

    /// Build a zero-copy [`Graph`] view over the mapped CSR sections. The
    /// returned graph (and any clone of it) keeps the mapping alive.
    pub fn load_graph(&self) -> Result<Graph, StoreError> {
        let directed = self.header.flags & FLAG_DIRECTED != 0;
        let sorted_rows = self.header.flags & FLAG_SORTED_ROWS != 0;
        let edge_list = self.edge_pairs()?;
        if edge_list.len() as u64 != self.header.num_edges {
            return Err(StoreError::Corrupt(format!(
                "edge list has {} pairs, header says {}",
                edge_list.len(),
                self.header.num_edges
            )));
        }
        let compressed = self.header.flags & FLAG_COMPRESSED != 0;
        // Compressed stores map the per-row byte offsets plus the varint
        // payload; plain stores map the neighbor-slot array. Both are
        // zero-copy views into the file.
        let neighbors_part =
            |nbr: &str, boff: &str, data: &str| -> Result<NeighborsPart, StoreError> {
                if compressed {
                    Ok(NeighborsPart::Compressed {
                        byte_offsets: self.typed_slice::<u64>(self.required(boff)?)?,
                        data: self.typed_slice::<u8>(self.required(data)?)?,
                    })
                } else {
                    Ok(NeighborsPart::Plain(
                        self.typed_slice::<u32>(self.required(nbr)?)?,
                    ))
                }
            };
        let (in_offsets, in_neighbors, in_edges) = if directed {
            (
                Some(self.typed_slice::<u64>(self.required(SEC_IN_OFFSETS)?)?),
                Some(neighbors_part(
                    SEC_IN_NEIGHBORS,
                    SEC_IN_NBR_OFFSETS,
                    SEC_IN_NBR_DATA,
                )?),
                Some(self.typed_slice::<u32>(self.required(SEC_IN_EDGES)?)?),
            )
        } else {
            (None, None, None)
        };
        let parts = GraphParts {
            directed,
            num_vertices: self.header.num_vertices as usize,
            edge_list,
            out_offsets: self.typed_slice::<u64>(self.required(SEC_OUT_OFFSETS)?)?,
            out_neighbors: neighbors_part(
                SEC_OUT_NEIGHBORS,
                SEC_OUT_NBR_OFFSETS,
                SEC_OUT_NBR_DATA,
            )?,
            out_edges: self.typed_slice::<u32>(self.required(SEC_OUT_EDGES)?)?,
            in_offsets,
            in_neighbors,
            in_edges,
            sorted_rows,
        };
        Graph::from_parts(parts).map_err(StoreError::Corrupt)
    }

    /// Copy an `f64` data column out of the file (columns are small
    /// relative to topology; only the CSR arrays stay zero-copy).
    pub fn column_f64(&self, name: &str) -> Result<Vec<f64>, StoreError> {
        let entry = self.required(name)?;
        if entry.elem != ElemType::F64 {
            return Err(StoreError::Corrupt(format!(
                "section `{name}` is not an f64 column"
            )));
        }
        let bytes = self.section_payload(entry);
        let mut out = Vec::with_capacity(bytes.len() / 8);
        for chunk in bytes.chunks_exact(8) {
            out.push(f64::from_ne_bytes(chunk.try_into().expect("8 bytes")));
        }
        Ok(out)
    }

    fn required(&self, name: &str) -> Result<&SectionEntry, StoreError> {
        self.section(name)
            .ok_or_else(|| StoreError::Corrupt(format!("missing section `{name}`")))
    }

    /// Expose a section as a typed [`SharedSlice`] view into the mapping.
    /// Falls back to an element-wise copy if the mapped bytes are not
    /// sufficiently aligned for `T` (cannot happen with this crate's
    /// writer, which 64-byte-aligns sections, but tolerated defensively).
    fn typed_slice<T: Copy + Send + Sync + 'static>(
        &self,
        entry: &SectionEntry,
    ) -> Result<SharedSlice<T>, StoreError> {
        let bytes = self.section_payload(entry);
        let width = std::mem::size_of::<T>();
        if width == 0 || bytes.len() % width != 0 {
            return Err(StoreError::Corrupt(format!(
                "section `{}` length {} not a multiple of {width}",
                entry.name,
                bytes.len()
            )));
        }
        let len = bytes.len() / width;
        let ptr = bytes.as_ptr() as *const T;
        if ptr as usize % std::mem::align_of::<T>() == 0 {
            let keep: SliceKeeper = self.mapping.clone();
            // SAFETY: `ptr..ptr+len` lies inside the mapping, which `keep`
            // holds alive; the region is immutable; `T` is plain old data
            // (u32/u64/f64/(u32,u32)) valid for any bit pattern.
            Ok(unsafe { SharedSlice::from_raw(ptr, len, keep) })
        } else {
            let mut v: Vec<T> = Vec::with_capacity(len);
            for i in 0..len {
                // SAFETY: in-bounds unaligned read of plain-old-data.
                v.push(unsafe { std::ptr::read_unaligned(ptr.add(i)) });
            }
            Ok(SharedSlice::from_vec(v))
        }
    }

    /// The edge list as `(u32, u32)` pairs — zero-copy when the tuple
    /// layout matches the wire layout, copied otherwise.
    fn edge_pairs(&self) -> Result<SharedSlice<(u32, u32)>, StoreError> {
        let entry = self.required(SEC_EDGE_LIST)?;
        if pair_layout_matches() {
            return self.typed_slice::<(u32, u32)>(entry);
        }
        let raw = self.typed_slice::<u32>(entry)?;
        let mut pairs = Vec::with_capacity(raw.len() / 2);
        for chunk in raw.chunks_exact(2) {
            pairs.push((chunk[0], chunk[1]));
        }
        Ok(SharedSlice::from_vec(pairs))
    }
}

impl std::fmt::Debug for StoredGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredGraph")
            .field("path", &self.path)
            .field("num_vertices", &self.header.num_vertices)
            .field("num_edges", &self.header.num_edges)
            .field("class", &self.meta.class)
            .field("fingerprint", &self.header.fingerprint)
            .finish()
    }
}

fn section_bytes<'a>(mapping: &'a Mapping, entry: &SectionEntry) -> &'a [u8] {
    &mapping.bytes()[entry.offset as usize..(entry.offset + entry.len_bytes) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::f64_bytes;
    use crate::writer::{write_graph_store, SectionData};
    use graphmine_graph::{Direction, GraphBuilder};
    use std::borrow::Cow;
    use std::fs::{self, OpenOptions};
    use std::io::{Seek, SeekFrom, Write};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphmine-reader-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample_graph(directed: bool) -> Graph {
        let mut b = if directed {
            GraphBuilder::directed(6)
        } else {
            GraphBuilder::undirected(6)
        };
        b.extend_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (0, 5)]);
        b.build()
    }

    fn pack_sample(dir: &std::path::Path, directed: bool) -> (PathBuf, Graph) {
        let graph = sample_graph(directed);
        let path = dir.join("g.gmg");
        let weights = vec![0.5f64; graph.num_edges()];
        let meta = StoreMeta {
            class: "powerlaw".to_string(),
            num_users: 0,
            side: 0,
            num_labels: 0,
            smoothing: 0.0,
            source: "test".to_string(),
            seed: 1,
        };
        write_graph_store(
            &path,
            &graph,
            &meta,
            0,
            vec![SectionData {
                name: "c:weights".to_string(),
                elem: ElemType::F64,
                bytes: Cow::Owned(f64_bytes(&weights).to_vec()),
            }],
        )
        .unwrap();
        (path, graph)
    }

    fn assert_same_topology(a: &Graph, b: &Graph) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edge_list(), b.edge_list());
        for dir in [Direction::Out, Direction::In] {
            let (ao, an, ae) = a.csr_slices(dir);
            let (bo, bn, be) = b.csr_slices(dir);
            assert_eq!(ao, bo);
            assert_eq!(an, bn);
            assert_eq!(ae, be);
        }
    }

    #[test]
    fn round_trips_undirected_and_directed() {
        for directed in [false, true] {
            let dir = temp_dir(if directed { "rt-d" } else { "rt-u" });
            let (path, graph) = pack_sample(&dir, directed);
            let stored = StoredGraph::open(&path).unwrap();
            stored.verify().unwrap();
            assert_eq!(stored.header().num_vertices, 6);
            assert_eq!(stored.meta().class, "powerlaw");
            let loaded = stored.load_graph().unwrap();
            assert_eq!(loaded.is_directed(), directed);
            assert_eq!(loaded.has_sorted_rows(), graph.has_sorted_rows());
            assert_same_topology(&graph, &loaded);
            assert_eq!(
                stored.column_f64("c:weights").unwrap().len(),
                graph.num_edges()
            );
            // The view must stay valid after the StoredGraph is dropped:
            // the mapping is kept alive by the slices themselves.
            drop(stored);
            assert_eq!(loaded.edge_list(), graph.edge_list());
            fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn zero_copy_on_mmap_platforms() {
        let dir = temp_dir("zc");
        let (path, _) = pack_sample(&dir, false);
        let stored = StoredGraph::open(&path).unwrap();
        let loaded = stored.load_graph().unwrap();
        if stored.is_mmap() {
            assert!(loaded.is_mapped());
            assert_eq!(loaded.topology_heap_bytes(), 0);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let dir = temp_dir("trunc");
        let (path, _) = pack_sample(&dir, false);
        let full = fs::metadata(&path).unwrap().len();
        for keep in [0u64, 7, HEADER_LEN as u64 - 1, full - 1] {
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(keep).unwrap();
            drop(f);
            match StoredGraph::open(&path) {
                Err(StoreError::Truncated { .. }) => {}
                other => panic!("truncate to {keep}: expected Truncated, got {other:?}"),
            }
            // restore for the next iteration
            fs::remove_file(&path).ok();
            pack_sample(&dir, false);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let dir = temp_dir("magic");
        let (path, _) = pack_sample(&dir, false);
        let patch = |at: u64, val: u8| {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(at)).unwrap();
            f.write_all(&[val]).unwrap();
        };
        let orig = fs::read(&path).unwrap();
        patch(0, b'X');
        assert!(matches!(
            StoredGraph::open(&path),
            Err(StoreError::BadMagic)
        ));
        fs::write(&path, &orig).unwrap();
        patch(8, 0xEE); // version field
        assert!(matches!(
            StoredGraph::open(&path),
            Err(StoreError::UnsupportedVersion(_))
        ));
        fs::write(&path, &orig).unwrap();
        // Swap the endianness tag bytes wholesale.
        let mut swapped = orig.clone();
        swapped.swap(10, 11);
        fs::write(&path, &swapped).unwrap();
        assert!(matches!(
            StoredGraph::open(&path),
            Err(StoreError::Endianness)
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_payload_byte_fails_verify_with_section_name() {
        let dir = temp_dir("flip");
        let (path, _) = pack_sample(&dir, false);
        let stored = StoredGraph::open(&path).unwrap();
        let target = stored.section(SEC_OUT_NEIGHBORS).unwrap().clone();
        drop(stored);
        let mut f = OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(target.offset)).unwrap();
        f.write_all(&[0xFF]).unwrap();
        drop(f);
        // Open still succeeds (checksums are deferred) …
        let stored = StoredGraph::open(&path).unwrap();
        // … but verify names the damaged section.
        match stored.verify() {
            Err(StoreError::CorruptSection { sections }) => {
                assert_eq!(sections, vec![SEC_OUT_NEIGHBORS.to_string()]);
            }
            other => panic!("expected CorruptSection, got {other:?}"),
        }
        // Triage agrees, and the intact edge list still verifies alone.
        assert_eq!(stored.triage(), vec![SEC_OUT_NEIGHBORS.to_string()]);
        stored.verify_section(SEC_EDGE_LIST).unwrap();
        assert!(matches!(
            stored.verify_section(SEC_OUT_NEIGHBORS),
            Err(StoreError::CorruptSection { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_header_byte_is_a_typed_error() {
        let dir = temp_dir("hflip");
        let (path, _) = pack_sample(&dir, false);
        let mut f = OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(17)).unwrap(); // inside num_vertices
        f.write_all(&[0xAB]).unwrap();
        drop(f);
        assert!(matches!(
            StoredGraph::open(&path),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_file_never_panics() {
        let dir = temp_dir("garbage");
        let path = dir.join("junk.gmg");
        // A spread of adversarial inputs: empty, tiny, header-sized noise,
        // and pseudo-random larger blobs. Every one must yield Err.
        let mut blobs: Vec<Vec<u8>> = vec![
            Vec::new(),
            vec![0u8; 1],
            vec![0u8; HEADER_LEN],
            vec![0xFF; HEADER_LEN * 4],
        ];
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut noise = Vec::with_capacity(4096);
        for _ in 0..4096 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            noise.push(x as u8);
        }
        blobs.push(noise);
        for blob in blobs {
            fs::write(&path, &blob).unwrap();
            assert!(StoredGraph::open(&path).is_err());
        }
        fs::remove_dir_all(&dir).ok();
    }
}
