//! Packing and loading whole [`Workload`]s, and edge-list ingest finalize.
//!
//! A store file holds more than topology: each workload class carries data
//! columns (`c:`-prefixed sections) — edge weights and k-means points for
//! the power-law class, ratings for collaborative filtering, the matrix
//! diagonal/rhs for Jacobi, flattened label potentials for the MRF
//! classes. [`pack_workload`] writes everything an algorithm run needs;
//! [`load_workload`] reconstructs the exact same `Workload` with the
//! topology mapped zero-copy, so a stored-vs-generated pair produces
//! bit-identical run traces.

use crate::catalog::{Catalog, CatalogEntry};
use crate::format::{
    f64_bytes, ElemType, StoreMeta, FLAG_DIRECTED, FLAG_SORTED_ROWS, SEC_EDGE_LIST, SEC_META,
};
use crate::ingest::IngestSession;
use crate::reader::StoredGraph;
use crate::writer::{write_graph_store_with, SectionData};
use crate::StoreError;
use graphmine_algos::Workload;
use graphmine_engine::IoShim;
use graphmine_gen::{gaussian_points, GridMrf, MatrixSystem, MrfGraph, RatingGraph};
use graphmine_graph::{parse_edge_list, Graph, GraphBuilder};
use std::borrow::Cow;
use std::fs::{self, File};
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Column holding per-edge weights (power-law class).
pub const COL_WEIGHTS: &str = "c:weights";
/// Column holding k-means point x coordinates (power-law class).
pub const COL_PX: &str = "c:px";
/// Column holding k-means point y coordinates (power-law class).
pub const COL_PY: &str = "c:py";
/// Column holding per-edge ratings (ratings class).
pub const COL_RATINGS: &str = "c:ratings";
/// Column holding off-diagonal matrix entries (matrix class).
pub const COL_OFF_DIAG: &str = "c:off_diag";
/// Column holding the matrix diagonal (matrix class).
pub const COL_DIAGONAL: &str = "c:diagonal";
/// Column holding the right-hand side vector (matrix class).
pub const COL_RHS: &str = "c:rhs";
/// Column holding flattened per-vertex priors (grid class).
pub const COL_PRIORS: &str = "c:priors";
/// Column holding flattened per-vertex unary potentials (MRF class).
pub const COL_UNARY: &str = "c:unary";
/// Column holding per-edge Potts bonuses (MRF class).
pub const COL_PAIRWISE: &str = "c:pairwise";

/// The class code recorded in the header (and folded into the
/// fingerprint) for a workload.
pub fn class_code(workload: &Workload) -> u32 {
    match workload {
        Workload::PowerLaw { .. } => 0,
        Workload::Ratings(_) => 1,
        Workload::Matrix(_) => 2,
        Workload::Grid(_) => 3,
        Workload::Mrf(_) => 4,
    }
}

/// Human-readable name for a class code (`"unknown"` for codes this build
/// does not know).
pub fn class_name(code: u32) -> &'static str {
    match code {
        0 => "powerlaw",
        1 => "ratings",
        2 => "matrix",
        3 => "grid",
        4 => "mrf",
        _ => "unknown",
    }
}

fn flatten(rows: &[Vec<f64>], width: usize) -> Result<Vec<f64>, StoreError> {
    let mut out = Vec::with_capacity(rows.len() * width);
    for row in rows {
        if row.len() != width {
            return Err(StoreError::Corrupt(format!(
                "ragged label rows: expected width {width}, found {}",
                row.len()
            )));
        }
        out.extend_from_slice(row);
    }
    Ok(out)
}

fn owned_col(name: &str, values: Vec<f64>) -> SectionData<'static> {
    SectionData {
        name: name.to_string(),
        elem: ElemType::F64,
        bytes: Cow::Owned(f64_bytes(&values).to_vec()),
    }
}

fn borrowed_col<'a>(name: &str, values: &'a [f64]) -> SectionData<'a> {
    SectionData {
        name: name.to_string(),
        elem: ElemType::F64,
        bytes: Cow::Borrowed(f64_bytes(values)),
    }
}

/// Pack a complete workload (topology, metadata, and every data column its
/// class needs) into a store file at `path`. Returns the content
/// fingerprint.
pub fn pack_workload(
    path: &Path,
    workload: &Workload,
    source: &str,
    seed: u64,
) -> Result<u64, StoreError> {
    pack_workload_with(path, workload, source, seed, &IoShim::disabled())
}

/// [`pack_workload`] with an explicit [`IoShim`] through which the file
/// hits disk (chaos testing and scrub re-packs).
pub fn pack_workload_with(
    path: &Path,
    workload: &Workload,
    source: &str,
    seed: u64,
    shim: &IoShim,
) -> Result<u64, StoreError> {
    let code = class_code(workload);
    let mut meta = StoreMeta {
        class: class_name(code).to_string(),
        num_users: 0,
        side: 0,
        num_labels: 0,
        smoothing: 0.0,
        source: source.to_string(),
        seed,
    };
    let columns: Vec<SectionData<'_>> = match workload {
        Workload::PowerLaw {
            weights, points, ..
        } => {
            let px: Vec<f64> = points.iter().map(|p| p[0]).collect();
            let py: Vec<f64> = points.iter().map(|p| p[1]).collect();
            vec![
                borrowed_col(COL_WEIGHTS, weights),
                owned_col(COL_PX, px),
                owned_col(COL_PY, py),
            ]
        }
        Workload::Ratings(rg) => {
            meta.num_users = rg.num_users;
            vec![borrowed_col(COL_RATINGS, &rg.ratings)]
        }
        Workload::Matrix(ms) => vec![
            borrowed_col(COL_OFF_DIAG, &ms.off_diagonal),
            borrowed_col(COL_DIAGONAL, &ms.diagonal),
            borrowed_col(COL_RHS, &ms.rhs),
        ],
        Workload::Grid(grid) => {
            meta.side = grid.side;
            meta.num_labels = grid.num_labels;
            meta.smoothing = grid.smoothing;
            vec![owned_col(
                COL_PRIORS,
                flatten(&grid.priors, grid.num_labels)?,
            )]
        }
        Workload::Mrf(mrf) => {
            meta.num_labels = mrf.num_labels;
            vec![
                owned_col(COL_UNARY, flatten(&mrf.unary, mrf.num_labels)?),
                borrowed_col(COL_PAIRWISE, &mrf.pairwise),
            ]
        }
    };
    write_graph_store_with(path, workload.graph(), &meta, code, columns, shim)
}

fn column_exact(stored: &StoredGraph, name: &str, expected: usize) -> Result<Vec<f64>, StoreError> {
    let values = stored.column_f64(name)?;
    if values.len() != expected {
        return Err(StoreError::Corrupt(format!(
            "column `{name}` holds {} values, expected {expected}",
            values.len()
        )));
    }
    Ok(values)
}

fn unflatten(flat: Vec<f64>, width: usize) -> Vec<Vec<f64>> {
    flat.chunks(width).map(|c| c.to_vec()).collect()
}

/// Reconstruct the workload stored in `stored`. The topology is loaded
/// zero-copy (mmap-backed [`graphmine_graph::SharedSlice`] views); data
/// columns are small relative to topology and are copied into `Vec`s.
pub fn load_workload(stored: &StoredGraph) -> Result<Workload, StoreError> {
    let graph = stored.load_graph()?;
    workload_from_graph(stored, graph)
}

/// Rebuild the workload with *plain* CSR topology re-derived from the
/// canonical edge-list section, bypassing the compressed neighbor
/// sections entirely.
///
/// This is the self-healing path for a compressed (v2) store whose varint
/// payload fails to decode: the edge list is verified against its own
/// checksum first (so a damaged edge list cannot silently rebuild a wrong
/// graph), then the CSR indexes are reconstructed exactly as the original
/// plain pack would have built them — the stored edge list is already
/// canonical, so the rebuild is bit-identical to a plain load. Fails with
/// [`StoreError::CorruptSection`] when the damage extends beyond the
/// topology sections (edge list, meta, or a data column is corrupt).
pub fn rebuild_workload_plain(stored: &StoredGraph) -> Result<Workload, StoreError> {
    let essential: Vec<String> = stored
        .triage()
        .into_iter()
        .filter(|s| s == SEC_EDGE_LIST || s == SEC_META || s.starts_with("c:"))
        .collect();
    if !essential.is_empty() {
        return Err(StoreError::CorruptSection {
            sections: essential,
        });
    }
    let header = stored.header();
    let directed = header.flags & FLAG_DIRECTED != 0;
    let sorted_rows = header.flags & FLAG_SORTED_ROWS != 0;
    let entry = stored
        .section(SEC_EDGE_LIST)
        .ok_or_else(|| StoreError::Corrupt(format!("missing section `{SEC_EDGE_LIST}`")))?
        .clone();
    let bytes = stored.section_payload(&entry);
    let mut b = if directed {
        GraphBuilder::directed(header.num_vertices as usize)
    } else {
        GraphBuilder::undirected(header.num_vertices as usize)
    };
    if !sorted_rows {
        b = b.allow_parallel_edges();
    }
    b = b.with_edge_capacity(bytes.len() / 8);
    for pair in bytes.chunks_exact(8) {
        let src = u32::from_ne_bytes(pair[..4].try_into().expect("4 bytes"));
        let dst = u32::from_ne_bytes(pair[4..].try_into().expect("4 bytes"));
        if src == dst || src as u64 >= header.num_vertices || dst as u64 >= header.num_vertices {
            return Err(StoreError::Corrupt(format!(
                "edge ({src},{dst}) invalid for {} vertices",
                header.num_vertices
            )));
        }
        b.push_edge(src, dst);
    }
    let graph = b.build();
    if graph.num_edges() as u64 != header.num_edges {
        return Err(StoreError::Corrupt(format!(
            "rebuilt graph has {} edges, header says {}",
            graph.num_edges(),
            header.num_edges
        )));
    }
    workload_from_graph(stored, graph)
}

fn workload_from_graph(stored: &StoredGraph, graph: Graph) -> Result<Workload, StoreError> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let meta = stored.meta();
    match meta.class.as_str() {
        "powerlaw" => {
            let weights = column_exact(stored, COL_WEIGHTS, m)?;
            let px = column_exact(stored, COL_PX, n)?;
            let py = column_exact(stored, COL_PY, n)?;
            let points = px.iter().zip(&py).map(|(&x, &y)| [x, y]).collect();
            Ok(Workload::PowerLaw {
                graph,
                weights,
                points,
            })
        }
        "ratings" => {
            if meta.num_users > n {
                return Err(StoreError::Corrupt(format!(
                    "num_users {} exceeds vertex count {n}",
                    meta.num_users
                )));
            }
            Ok(Workload::Ratings(RatingGraph {
                ratings: column_exact(stored, COL_RATINGS, m)?,
                num_users: meta.num_users,
                graph,
            }))
        }
        "matrix" => Ok(Workload::Matrix(MatrixSystem {
            off_diagonal: column_exact(stored, COL_OFF_DIAG, m)?,
            diagonal: column_exact(stored, COL_DIAGONAL, n)?,
            rhs: column_exact(stored, COL_RHS, n)?,
            graph,
        })),
        "grid" => {
            let labels = meta.num_labels;
            if labels == 0 || meta.side * meta.side != n {
                return Err(StoreError::Corrupt(format!(
                    "grid meta inconsistent: side {} labels {labels} for {n} vertices",
                    meta.side
                )));
            }
            let priors = column_exact(stored, COL_PRIORS, n * labels)?;
            Ok(Workload::Grid(GridMrf {
                side: meta.side,
                num_labels: labels,
                priors: unflatten(priors, labels),
                smoothing: meta.smoothing,
                graph,
            }))
        }
        "mrf" => {
            let labels = meta.num_labels;
            if labels == 0 {
                return Err(StoreError::Corrupt("mrf meta has zero labels".to_string()));
            }
            let unary = column_exact(stored, COL_UNARY, n * labels)?;
            Ok(Workload::Mrf(MrfGraph {
                unary: unflatten(unary, labels),
                pairwise: column_exact(stored, COL_PAIRWISE, m)?,
                num_labels: labels,
                graph,
            }))
        }
        other => Err(StoreError::Corrupt(format!(
            "unknown workload class `{other}`"
        ))),
    }
}

/// Scan an edge-list file for `max endpoint + 1`, used when an ingest (or
/// a CLI pack) declares `num_vertices == 0` (infer). Malformed lines are
/// left for [`parse_edge_list`] to diagnose with line numbers.
pub fn infer_vertex_count(path: &Path) -> Result<usize, StoreError> {
    let mut max_id = 0u64;
    let mut any = false;
    for line in BufReader::new(File::open(path)?).lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        for tok in line.split_whitespace().take(2) {
            if let Ok(v) = tok.parse::<u64>() {
                max_id = max_id.max(v);
                any = true;
            }
        }
    }
    Ok(if any { max_id as usize + 1 } else { 0 })
}

/// Finalize a completed ingest session: parse the accumulated edge list,
/// synthesize the derived power-law columns, pack, fully verify, and
/// atomically install into the catalog. The session directory is removed
/// on success and kept (still resumable) on failure.
pub fn finalize_ingest(
    catalog: &Catalog,
    session: IngestSession,
) -> Result<CatalogEntry, StoreError> {
    finalize_ingest_with(catalog, session, &IoShim::disabled())
}

/// [`finalize_ingest`] with an explicit [`IoShim`] through which the
/// packed store hits disk.
pub fn finalize_ingest_with(
    catalog: &Catalog,
    session: IngestSession,
    shim: &IoShim,
) -> Result<CatalogEntry, StoreError> {
    let config = session.config().clone();
    let data = session.data_path();
    let num_vertices = if config.num_vertices == 0 {
        infer_vertex_count(&data)?
    } else {
        config.num_vertices
    };
    let (graph, weights) = parse_edge_list(
        BufReader::new(File::open(&data)?),
        num_vertices,
        config.directed,
    )
    .map_err(|e| StoreError::Corrupt(format!("edge list: {e}")))?;
    let points = gaussian_points(graph.num_vertices(), config.seed);
    let workload = Workload::PowerLaw {
        graph,
        weights,
        points,
    };
    // Pack into a temp sibling inside the catalog dir, deep-verify, then
    // install via rename: the catalog never exposes an unverified file.
    let staging = catalog.dir().join(format!(
        ".ingest-{}.tmp-{}",
        config.name,
        std::process::id()
    ));
    let result = (|| {
        pack_workload_with(&staging, &workload, "ingest:edgelist", config.seed, shim)?;
        StoredGraph::open(&staging)?.verify()?;
        catalog.install(&config.name, &staging)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&staging);
        return result;
    }
    session.discard()?;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::IngestConfig;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphmine-workload-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn pack_and_load(tag: &str, workload: &Workload) -> Workload {
        let dir = temp_dir(tag);
        let path = dir.join("w.gmg");
        pack_workload(&path, workload, "test", 7).unwrap();
        let stored = StoredGraph::open(&path).unwrap();
        stored.verify().unwrap();
        let loaded = load_workload(&stored).unwrap();
        fs::remove_dir_all(&dir).ok();
        loaded
    }

    #[test]
    fn powerlaw_round_trips() {
        let w = Workload::powerlaw(200, 2.0, 11);
        let loaded = pack_and_load("pl", &w);
        let (
            Workload::PowerLaw {
                graph: ga,
                weights: wa,
                points: pa,
            },
            Workload::PowerLaw {
                graph: gb,
                weights: wb,
                points: pb,
            },
        ) = (&w, &loaded)
        else {
            panic!("class changed in round trip");
        };
        assert_eq!(ga.edge_list(), gb.edge_list());
        assert_eq!(ga.num_vertices(), gb.num_vertices());
        assert_eq!(wa, wb);
        assert_eq!(pa, pb);
        assert!(gb.validate().is_ok());
    }

    #[test]
    fn every_class_round_trips() {
        let cases = [
            ("rt-ratings", Workload::ratings(150, 2.0, 3)),
            ("rt-matrix", Workload::matrix(40, 3)),
            ("rt-grid", Workload::grid(6, 3)),
            ("rt-mrf", Workload::mrf(60, 3)),
        ];
        for (tag, w) in cases {
            let loaded = pack_and_load(tag, &w);
            assert_eq!(class_code(&loaded), class_code(&w), "{tag}");
            assert_eq!(loaded.graph().edge_list(), w.graph().edge_list(), "{tag}");
            match (&w, &loaded) {
                (Workload::Ratings(a), Workload::Ratings(b)) => {
                    assert_eq!(a.ratings, b.ratings);
                    assert_eq!(a.num_users, b.num_users);
                }
                (Workload::Matrix(a), Workload::Matrix(b)) => {
                    assert_eq!(a.off_diagonal, b.off_diagonal);
                    assert_eq!(a.diagonal, b.diagonal);
                    assert_eq!(a.rhs, b.rhs);
                }
                (Workload::Grid(a), Workload::Grid(b)) => {
                    assert_eq!(a.priors, b.priors);
                    assert_eq!((a.side, a.num_labels), (b.side, b.num_labels));
                    assert_eq!(a.smoothing, b.smoothing);
                }
                (Workload::Mrf(a), Workload::Mrf(b)) => {
                    assert_eq!(a.unary, b.unary);
                    assert_eq!(a.pairwise, b.pairwise);
                    assert_eq!(a.num_labels, b.num_labels);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn loaded_topology_is_mmap_backed() {
        let dir = temp_dir("mmap");
        let path = dir.join("w.gmg");
        let w = Workload::powerlaw(100, 2.0, 5);
        pack_workload(&path, &w, "test", 5).unwrap();
        let stored = StoredGraph::open(&path).unwrap();
        let loaded = load_workload(&stored).unwrap();
        if stored.is_mmap() {
            assert!(loaded.graph().is_mapped());
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finalize_ingest_installs_verified_graph() {
        let dir = temp_dir("finalize");
        let catalog = Catalog::open(dir.join("catalog")).unwrap();
        let sessions = dir.join("sessions");
        let mut s = IngestSession::begin(
            &sessions,
            IngestConfig {
                name: "tiny".to_string(),
                directed: false,
                num_vertices: 0,
                seed: 9,
            },
        )
        .unwrap();
        s.append_chunk(0, b"# tiny test graph\n0 1\n1 2\n").unwrap();
        s.append_chunk(1, b"2 3 0.5\n0 3\n").unwrap();
        let entry = finalize_ingest(&catalog, s).unwrap();
        assert_eq!(entry.name, "tiny");
        assert_eq!(entry.num_vertices, 4);
        assert_eq!(entry.num_edges, 4);
        assert!(!sessions.join("tiny").exists());
        let stored = catalog.get("tiny").unwrap();
        let Workload::PowerLaw { weights, .. } = load_workload(&stored).unwrap() else {
            panic!("ingest should produce a powerlaw workload");
        };
        assert!(weights.contains(&0.5));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebuild_plain_recovers_from_corrupt_compressed_payload() {
        use graphmine_graph::{Direction, Representation};
        let dir = temp_dir("rebuild");
        let path = dir.join("w.gmg");
        let reference = Workload::powerlaw(300, 2.0, 11);
        let compressed = Workload::powerlaw(300, 2.0, 11)
            .with_representation(Representation::Compressed)
            .unwrap();
        pack_workload(&path, &compressed, "test", 11).unwrap();
        let stored = StoredGraph::open(&path).unwrap();
        let sec = stored
            .sections()
            .iter()
            .find(|s| s.name == "out_nbr_data")
            .expect("compressed pack has varint payload")
            .clone();
        drop(stored);
        let mut bytes = fs::read(&path).unwrap();
        bytes[(sec.offset + sec.len_bytes / 2) as usize] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let stored = StoredGraph::open(&path).unwrap();
        assert!(stored.verify().is_err());
        // The fallback rebuilds the exact plain CSR from the edge list.
        let rebuilt = rebuild_workload_plain(&stored).unwrap();
        assert_eq!(rebuilt.graph().edge_list(), reference.graph().edge_list());
        let (ro, rn, re) = rebuilt.graph().csr_slices(Direction::Out);
        let (eo, en, ee) = reference.graph().csr_slices(Direction::Out);
        assert_eq!(ro, eo);
        assert_eq!(rn, en);
        assert_eq!(re, ee);
        let (Workload::PowerLaw { weights: wa, .. }, Workload::PowerLaw { weights: wb, .. }) =
            (&reference, &rebuilt)
        else {
            panic!("class changed in rebuild");
        };
        assert_eq!(wa, wb);
        // Damage reaching the edge list itself is not recoverable.
        let edge_sec = stored
            .sections()
            .iter()
            .find(|s| s.name == SEC_EDGE_LIST)
            .unwrap()
            .clone();
        drop(stored);
        let mut bytes = fs::read(&path).unwrap();
        bytes[(edge_sec.offset + 1) as usize] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let stored = StoredGraph::open(&path).unwrap();
        match rebuild_workload_plain(&stored) {
            Err(StoreError::CorruptSection { sections }) => {
                assert!(sections.contains(&SEC_EDGE_LIST.to_string()))
            }
            other => panic!("expected CorruptSection, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finalize_rejects_malformed_edges_and_keeps_session() {
        let dir = temp_dir("badfinalize");
        let catalog = Catalog::open(dir.join("catalog")).unwrap();
        let sessions = dir.join("sessions");
        let mut s = IngestSession::begin(
            &sessions,
            IngestConfig {
                name: "bad".to_string(),
                directed: false,
                num_vertices: 0,
                seed: 1,
            },
        )
        .unwrap();
        s.append_chunk(0, b"0 1\nnot an edge\n").unwrap();
        assert!(matches!(
            finalize_ingest(&catalog, s),
            Err(StoreError::Corrupt(_))
        ));
        // The session survives a failed finalize so the client can fix and
        // retry (here: resume still works).
        assert!(IngestSession::resume(&sessions, "bad").is_ok());
        assert!(!catalog.contains("bad"));
        fs::remove_dir_all(&dir).ok();
    }
}
