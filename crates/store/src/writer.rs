//! Atomic store-file writer.
//!
//! Layout is computed up front (all section checksums are hashed before a
//! single byte hits disk, because the header's fingerprint covers them),
//! then the file is written to a hidden temp sibling, fsynced, and renamed
//! into place — the same crash-safety idiom the engine's checkpoints use.
//! A crash at any point leaves either the old file or no file, never a
//! torn one.

use crate::format::{
    align_up, pair_bytes, u32_bytes, u64_bytes, ElemType, Header, SectionEntry, StoreMeta,
    FLAG_COMPRESSED, FLAG_DIRECTED, FLAG_SORTED_ROWS, FORMAT_VERSION, FORMAT_VERSION_PADDED,
    HEADER_LEN, SEC_EDGE_LIST, SEC_IN_EDGES, SEC_IN_NBR_DATA, SEC_IN_NBR_OFFSETS, SEC_IN_NEIGHBORS,
    SEC_IN_OFFSETS, SEC_META, SEC_OUT_EDGES, SEC_OUT_NBR_DATA, SEC_OUT_NBR_OFFSETS,
    SEC_OUT_NEIGHBORS, SEC_OUT_OFFSETS, TOC_ENTRY_LEN,
};
use crate::StoreError;
use graphmine_engine::fault::FaultSite;
use graphmine_engine::IoShim;
use graphmine_graph::Representation;
use graphmine_graph::{Direction, Graph};
use std::borrow::Cow;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

/// One section staged for writing: a name, an element type, and its raw
/// bytes (borrowed where the in-memory layout already matches the wire
/// layout).
pub struct SectionData<'a> {
    /// Section name (≤ 32 bytes).
    pub name: String,
    /// Element type recorded in the TOC.
    pub elem: ElemType,
    /// Payload bytes.
    pub bytes: Cow<'a, [u8]>,
}

/// Write a complete store file atomically. Returns the content
/// fingerprint recorded in the header.
pub fn write_store(
    path: &Path,
    directed: bool,
    sorted_rows: bool,
    compressed: bool,
    num_vertices: u64,
    num_edges: u64,
    workload_class: u32,
    sections: &[SectionData<'_>],
) -> Result<u64, StoreError> {
    write_store_with(
        path,
        directed,
        sorted_rows,
        compressed,
        num_vertices,
        num_edges,
        workload_class,
        sections,
        &IoShim::disabled(),
    )
}

/// [`write_store`] with an explicit [`IoShim`] through which the file
/// hits disk. The disabled shim streams sections straight to the temp
/// sibling (no whole-file buffer); an armed shim assembles the file in
/// memory so byte-level faults (torn write, bit flip, stale rename) can be
/// applied to the exact on-disk image.
#[allow(clippy::too_many_arguments)]
pub fn write_store_with(
    path: &Path,
    directed: bool,
    sorted_rows: bool,
    compressed: bool,
    num_vertices: u64,
    num_edges: u64,
    workload_class: u32,
    sections: &[SectionData<'_>],
    shim: &IoShim,
) -> Result<u64, StoreError> {
    let mut flags = 0u32;
    if directed {
        flags |= FLAG_DIRECTED;
    }
    if sorted_rows {
        flags |= FLAG_SORTED_ROWS;
    }
    // Compressed payloads bump the format version (v3: word-padded varint
    // sections); plain files stay at version 1 so pre-compression readers
    // keep opening them.
    let version = if compressed {
        flags |= FLAG_COMPRESSED;
        FORMAT_VERSION_PADDED
    } else {
        FORMAT_VERSION
    };

    // Lay out sections and hash them before writing anything: the header
    // (which comes first in the file) commits to every section checksum.
    let toc_len = sections.len() * TOC_ENTRY_LEN;
    let mut cursor = (HEADER_LEN + toc_len) as u64;
    let mut entries = Vec::with_capacity(sections.len());
    for s in sections {
        let offset = align_up(cursor);
        entries.push(SectionEntry {
            name: s.name.clone(),
            elem: s.elem,
            offset,
            len_bytes: s.bytes.len() as u64,
            checksum: crate::xxh::xxh64(&s.bytes, 0),
        });
        cursor = offset + s.bytes.len() as u64;
    }
    let file_len = cursor;
    let fingerprint = crate::format::fingerprint(
        num_vertices,
        num_edges,
        flags,
        workload_class,
        entries.iter().map(|e| e.checksum),
    );
    let header = Header {
        version,
        flags,
        num_vertices,
        num_edges,
        section_count: sections.len() as u32,
        workload_class,
        file_len,
        fingerprint,
    };

    let file_name = path
        .file_name()
        .ok_or_else(|| {
            StoreError::Corrupt(format!("store path {} has no file name", path.display()))
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(".{file_name}.tmp-{}", std::process::id()));
    if shim.is_armed() {
        // Assemble the exact on-disk image so the shim can tear, flip, or
        // drop it at the byte level. Chaos runs only; the production path
        // below never buffers the whole file.
        let mut image = Vec::with_capacity(file_len as usize);
        image.extend_from_slice(&header.encode());
        for e in &entries {
            image.extend_from_slice(&e.encode()?);
        }
        for (e, s) in entries.iter().zip(sections) {
            image.resize(e.offset as usize, 0);
            image.extend_from_slice(&s.bytes);
        }
        shim.write_atomic(FaultSite::StoreWrite, None, path, &tmp, &image)?;
        return Ok(fingerprint);
    }
    let write_all = || -> Result<(), StoreError> {
        let mut w = BufWriter::new(File::create(&tmp)?);
        w.write_all(&header.encode())?;
        for e in &entries {
            w.write_all(&e.encode()?)?;
        }
        let mut pos = (HEADER_LEN + toc_len) as u64;
        let pad = [0u8; crate::format::ALIGN as usize];
        for (e, s) in entries.iter().zip(sections) {
            w.write_all(&pad[..(e.offset - pos) as usize])?;
            w.write_all(&s.bytes)?;
            pos = e.offset + e.len_bytes;
        }
        let f = w.into_inner().map_err(|e| StoreError::Io(e.into_error()))?;
        f.sync_all()?;
        Ok(())
    };
    if let Err(e) = write_all() {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(StoreError::Io(e));
    }
    Ok(fingerprint)
}

/// Pack a graph plus metadata and data columns into a store file.
///
/// The topology sections are borrowed views of the graph's own CSR arrays
/// (no copies); `columns` carries the workload's data sections (named with
/// the `c:` prefix by convention). Returns the content fingerprint.
pub fn write_graph_store<'a>(
    path: &Path,
    graph: &'a Graph,
    meta: &StoreMeta,
    workload_class: u32,
    columns: Vec<SectionData<'a>>,
) -> Result<u64, StoreError> {
    write_graph_store_with(
        path,
        graph,
        meta,
        workload_class,
        columns,
        &IoShim::disabled(),
    )
}

/// [`write_graph_store`] with an explicit [`IoShim`] (see
/// [`write_store_with`]).
pub fn write_graph_store_with<'a>(
    path: &Path,
    graph: &'a Graph,
    meta: &StoreMeta,
    workload_class: u32,
    columns: Vec<SectionData<'a>>,
    shim: &IoShim,
) -> Result<u64, StoreError> {
    let mut sections = Vec::with_capacity(9 + columns.len());
    sections.push(SectionData {
        name: SEC_META.to_string(),
        elem: ElemType::Bytes,
        bytes: Cow::Owned(meta.to_json_bytes()),
    });
    sections.push(SectionData {
        name: SEC_EDGE_LIST.to_string(),
        elem: ElemType::PairU32,
        bytes: pair_bytes(graph.edge_list()),
    });
    let compressed = graph.representation() == Representation::Compressed;
    // Topology sections per direction: plain graphs write neighbor-slot
    // arrays, compressed graphs write per-row byte offsets plus the
    // delta-varint payload. The degree-prefix and edge-id sections are the
    // same in both layouts.
    let push_dir = |sections: &mut Vec<SectionData<'a>>, dir: Direction| {
        let (off_name, nbr_name, edge_name, boff_name, data_name) = match dir {
            Direction::Out => (
                SEC_OUT_OFFSETS,
                SEC_OUT_NEIGHBORS,
                SEC_OUT_EDGES,
                SEC_OUT_NBR_OFFSETS,
                SEC_OUT_NBR_DATA,
            ),
            Direction::In => (
                SEC_IN_OFFSETS,
                SEC_IN_NEIGHBORS,
                SEC_IN_EDGES,
                SEC_IN_NBR_OFFSETS,
                SEC_IN_NBR_DATA,
            ),
        };
        if compressed {
            let (offsets, byte_offsets, data, edges) = graph
                .compressed_slices(dir)
                .expect("compressed graph exposes compressed slices");
            sections.push(SectionData {
                name: off_name.to_string(),
                elem: ElemType::U64,
                bytes: Cow::Borrowed(u64_bytes(offsets)),
            });
            sections.push(SectionData {
                name: boff_name.to_string(),
                elem: ElemType::U64,
                bytes: Cow::Borrowed(u64_bytes(byte_offsets)),
            });
            // v3 files pad each varint payload to a word multiple with at
            // least one full guard word of zeroes so readers can batch-decode
            // every row. Graphs built in memory are already padded; graphs
            // adopted zero-copy from an unpadded v2 file are padded here.
            let logical = byte_offsets.last().copied().unwrap_or(0) as usize;
            let padded = graphmine_graph::varint::padded_payload_len(logical);
            sections.push(SectionData {
                name: data_name.to_string(),
                elem: ElemType::Bytes,
                bytes: if data.len() >= padded {
                    Cow::Borrowed(data)
                } else {
                    let mut owned = data.to_vec();
                    owned.resize(padded, 0);
                    Cow::Owned(owned)
                },
            });
            sections.push(SectionData {
                name: edge_name.to_string(),
                elem: ElemType::U32,
                bytes: Cow::Borrowed(u32_bytes(edges)),
            });
        } else {
            let (offsets, neighbors, edges) = graph.csr_slices(dir);
            sections.push(SectionData {
                name: off_name.to_string(),
                elem: ElemType::U64,
                bytes: Cow::Borrowed(u64_bytes(offsets)),
            });
            sections.push(SectionData {
                name: nbr_name.to_string(),
                elem: ElemType::U32,
                bytes: Cow::Borrowed(u32_bytes(neighbors)),
            });
            sections.push(SectionData {
                name: edge_name.to_string(),
                elem: ElemType::U32,
                bytes: Cow::Borrowed(u32_bytes(edges)),
            });
        }
    };
    push_dir(&mut sections, Direction::Out);
    if graph.is_directed() {
        push_dir(&mut sections, Direction::In);
    }
    sections.extend(columns);
    write_store_with(
        path,
        graph.is_directed(),
        graph.has_sorted_rows(),
        compressed,
        graph.num_vertices() as u64,
        graph.num_edges() as u64,
        workload_class,
        &sections,
        shim,
    )
}
