//! Byte-level layout of the store format (see DESIGN.md §11 for the
//! narrative version).
//!
//! ```text
//! [ header: 64 bytes ][ TOC: section_count × 64 bytes ][ sections … ]
//! ```
//!
//! Header (all integers native-endian; the endianness tag rejects files
//! from opposite-endian writers):
//!
//! ```text
//! off len field
//!   0   8 magic              b"GMSTORE1"
//!   8   2 format version     u16 (currently 1)
//!  10   2 endianness tag     u16 0xFEFF (reads as 0xFFFE when byte-swapped)
//!  12   4 flags              u32 (bit0 directed, bit1 sorted rows)
//!  16   8 num_vertices       u64
//!  24   8 num_edges          u64
//!  32   4 section count      u32
//!  36   4 workload class     u32 (0 powerlaw, 1 ratings, 2 matrix, 3 grid, 4 mrf)
//!  40   8 file length        u64 (total bytes, including padding)
//!  48   8 fingerprint        u64 (XXH64 over counts, flags, class, section checksums)
//!  56   8 header checksum    u64 (XXH64 of bytes 0..56)
//! ```
//!
//! Each TOC entry is 64 bytes: a NUL-padded section name (≤ 32 bytes), an
//! element-type code, the absolute byte offset (64-byte aligned), the exact
//! payload length in bytes, and the XXH64 checksum of the payload.

use crate::json;
use crate::xxh::xxh64;
use crate::StoreError;

/// File magic.
pub const MAGIC: [u8; 8] = *b"GMSTORE1";
/// Baseline format version: plain (uncompressed) neighbor-slot sections.
pub const FORMAT_VERSION: u16 = 1;
/// Format version for files carrying delta-varint compressed adjacency
/// payloads ([`FLAG_COMPRESSED`], `*_nbr_offsets`/`*_nbr_data` sections).
/// Plain packs keep writing version 1, so readers that predate compression
/// open them unchanged; they fail closed on version-2 files with
/// [`StoreError::UnsupportedVersion`].
pub const FORMAT_VERSION_COMPRESSED: u16 = 2;
/// Format version for compressed packs whose `*_nbr_data` sections carry
/// the word-aligned guard padding
/// ([`graphmine_graph::varint::padded_payload_len`]): at least 8 zero
/// bytes past the logical payload, so the guard-elided batch decoder can
/// load a full `u64` from any in-row position of a mapped section without
/// crossing the mapping edge. `*_nbr_offsets[n]` still records the logical
/// length. v1/v2 files stay readable (unpadded tails fall back to scalar
/// decode); readers that predate padding fail closed on version-3 files
/// with [`StoreError::UnsupportedVersion`].
pub const FORMAT_VERSION_PADDED: u16 = 3;
/// Endianness tag as written by a same-endian writer.
pub const ENDIAN_TAG: u16 = 0xFEFF;
/// Alignment of every data section, chosen to match cache lines; 8-byte
/// alignment is what correctness actually requires for the widest element.
pub const ALIGN: u64 = 64;
/// Header length in bytes.
pub const HEADER_LEN: usize = 64;
/// TOC entry length in bytes.
pub const TOC_ENTRY_LEN: usize = 64;
/// Maximum section name length in bytes.
pub const SECTION_NAME_LEN: usize = 32;

/// Header flag: the stored graph is directed (and carries an in-adjacency).
pub const FLAG_DIRECTED: u32 = 1;
/// Header flag: adjacency rows are in ascending neighbor order.
pub const FLAG_SORTED_ROWS: u32 = 1 << 1;
/// Header flag: neighbor ids are stored delta-varint compressed
/// (`*_nbr_offsets` + `*_nbr_data` sections replace `*_neighbors`).
/// Requires [`FLAG_SORTED_ROWS`] and format version ≥
/// [`FORMAT_VERSION_COMPRESSED`].
pub const FLAG_COMPRESSED: u32 = 1 << 2;

/// Element type of a section's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemType {
    /// Raw bytes (the JSON meta section).
    Bytes,
    /// Little `u32` array (neighbor and edge-id slots).
    U32,
    /// `u64` array (degree-prefix offsets).
    U64,
    /// `f64` array (data columns).
    F64,
    /// Interleaved `(u32, u32)` pairs (the canonical edge list).
    PairU32,
}

impl ElemType {
    /// Wire code.
    pub fn code(self) -> u32 {
        match self {
            ElemType::Bytes => 0,
            ElemType::U32 => 1,
            ElemType::U64 => 2,
            ElemType::F64 => 3,
            ElemType::PairU32 => 4,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: u32) -> Option<ElemType> {
        match code {
            0 => Some(ElemType::Bytes),
            1 => Some(ElemType::U32),
            2 => Some(ElemType::U64),
            3 => Some(ElemType::F64),
            4 => Some(ElemType::PairU32),
            _ => None,
        }
    }

    /// Element width in bytes (1 for raw byte sections).
    pub fn width(self) -> u64 {
        match self {
            ElemType::Bytes => 1,
            ElemType::U32 => 4,
            ElemType::U64 | ElemType::F64 | ElemType::PairU32 => 8,
        }
    }
}

/// Parsed file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version.
    pub version: u16,
    /// Flag bits (`FLAG_*`).
    pub flags: u32,
    /// Vertex count of the stored graph.
    pub num_vertices: u64,
    /// Edge count (each undirected edge counted once).
    pub num_edges: u64,
    /// Number of TOC entries.
    pub section_count: u32,
    /// Workload class code (see [`crate::workload::class_code`]).
    pub workload_class: u32,
    /// Total file length in bytes.
    pub file_len: u64,
    /// Content fingerprint (XXH64 over counts, flags, class, and every
    /// section checksum).
    pub fingerprint: u64,
}

impl Header {
    /// Serialize to the 64-byte wire form, computing the header checksum.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        buf[0..8].copy_from_slice(&MAGIC);
        buf[8..10].copy_from_slice(&self.version.to_ne_bytes());
        buf[10..12].copy_from_slice(&ENDIAN_TAG.to_ne_bytes());
        buf[12..16].copy_from_slice(&self.flags.to_ne_bytes());
        buf[16..24].copy_from_slice(&self.num_vertices.to_ne_bytes());
        buf[24..32].copy_from_slice(&self.num_edges.to_ne_bytes());
        buf[32..36].copy_from_slice(&self.section_count.to_ne_bytes());
        buf[36..40].copy_from_slice(&self.workload_class.to_ne_bytes());
        buf[40..48].copy_from_slice(&self.file_len.to_ne_bytes());
        buf[48..56].copy_from_slice(&self.fingerprint.to_ne_bytes());
        let checksum = xxh64(&buf[0..56], 0);
        buf[56..64].copy_from_slice(&checksum.to_ne_bytes());
        buf
    }

    /// Parse and validate the 64-byte wire form: magic, endianness tag,
    /// version, and the header checksum.
    pub fn decode(bytes: &[u8]) -> Result<Header, StoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                needed: HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        if bytes[0..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let u16_at = |at: usize| u16::from_ne_bytes(bytes[at..at + 2].try_into().expect("u16"));
        let u32_at = |at: usize| u32::from_ne_bytes(bytes[at..at + 4].try_into().expect("u32"));
        let u64_at = |at: usize| u64::from_ne_bytes(bytes[at..at + 8].try_into().expect("u64"));
        let endian = u16_at(10);
        if endian == ENDIAN_TAG.swap_bytes() {
            return Err(StoreError::Endianness);
        }
        if endian != ENDIAN_TAG {
            return Err(StoreError::Corrupt(format!(
                "unrecognized endianness tag {endian:#06x}"
            )));
        }
        let version = u16_at(8);
        if !(FORMAT_VERSION..=FORMAT_VERSION_PADDED).contains(&version) {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let stored = u64_at(56);
        let actual = xxh64(&bytes[0..56], 0);
        if stored != actual {
            return Err(StoreError::ChecksumMismatch {
                section: "header".to_string(),
                expected: stored,
                actual,
            });
        }
        let flags = u32_at(12);
        if flags & FLAG_COMPRESSED != 0 && version < FORMAT_VERSION_COMPRESSED {
            return Err(StoreError::Corrupt(format!(
                "compressed-adjacency flag set on format version {version}"
            )));
        }
        Ok(Header {
            version,
            flags: u32_at(12),
            num_vertices: u64_at(16),
            num_edges: u64_at(24),
            section_count: u32_at(32),
            workload_class: u32_at(36),
            file_len: u64_at(40),
            fingerprint: u64_at(48),
        })
    }
}

/// One TOC entry: where a named section lives and how to check it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section name (≤ 32 bytes; topology sections use fixed names,
    /// data columns are prefixed `c:`).
    pub name: String,
    /// Payload element type.
    pub elem: ElemType,
    /// Absolute byte offset of the payload (64-byte aligned).
    pub offset: u64,
    /// Exact payload length in bytes.
    pub len_bytes: u64,
    /// XXH64 of the payload bytes.
    pub checksum: u64,
}

impl SectionEntry {
    /// Serialize to the 64-byte wire form.
    pub fn encode(&self) -> Result<[u8; TOC_ENTRY_LEN], StoreError> {
        let name = self.name.as_bytes();
        if name.is_empty() || name.len() > SECTION_NAME_LEN {
            return Err(StoreError::Corrupt(format!(
                "section name `{}` length {} outside 1..={SECTION_NAME_LEN}",
                self.name,
                name.len()
            )));
        }
        let mut buf = [0u8; TOC_ENTRY_LEN];
        buf[0..name.len()].copy_from_slice(name);
        buf[32..36].copy_from_slice(&self.elem.code().to_ne_bytes());
        // bytes 36..40 reserved (zero)
        buf[40..48].copy_from_slice(&self.offset.to_ne_bytes());
        buf[48..56].copy_from_slice(&self.len_bytes.to_ne_bytes());
        buf[56..64].copy_from_slice(&self.checksum.to_ne_bytes());
        Ok(buf)
    }

    /// Parse the 64-byte wire form.
    pub fn decode(bytes: &[u8]) -> Result<SectionEntry, StoreError> {
        if bytes.len() < TOC_ENTRY_LEN {
            return Err(StoreError::Truncated {
                needed: TOC_ENTRY_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        let name_end = bytes[0..SECTION_NAME_LEN]
            .iter()
            .position(|&b| b == 0)
            .unwrap_or(SECTION_NAME_LEN);
        let name = std::str::from_utf8(&bytes[0..name_end])
            .map_err(|_| StoreError::Corrupt("section name is not UTF-8".to_string()))?
            .to_string();
        if name.is_empty() {
            return Err(StoreError::Corrupt("empty section name".to_string()));
        }
        let u32_at = |at: usize| u32::from_ne_bytes(bytes[at..at + 4].try_into().expect("u32"));
        let u64_at = |at: usize| u64::from_ne_bytes(bytes[at..at + 8].try_into().expect("u64"));
        let code = u32_at(32);
        let elem = ElemType::from_code(code)
            .ok_or_else(|| StoreError::Corrupt(format!("unknown element type code {code}")))?;
        Ok(SectionEntry {
            name,
            elem,
            offset: u64_at(40),
            len_bytes: u64_at(48),
            checksum: u64_at(56),
        })
    }
}

/// Round `at` up to the next section boundary.
pub fn align_up(at: u64) -> u64 {
    at.div_ceil(ALIGN) * ALIGN
}

/// Name of the JSON metadata section.
pub const SEC_META: &str = "meta";
/// Name of the canonical edge-list section.
pub const SEC_EDGE_LIST: &str = "edge_list";
/// Name of the out-adjacency degree-prefix section.
pub const SEC_OUT_OFFSETS: &str = "out_offsets";
/// Name of the out-adjacency neighbor-slot section.
pub const SEC_OUT_NEIGHBORS: &str = "out_neighbors";
/// Name of the out-adjacency edge-id-slot section.
pub const SEC_OUT_EDGES: &str = "out_edges";
/// Name of the in-adjacency degree-prefix section (directed only).
pub const SEC_IN_OFFSETS: &str = "in_offsets";
/// Name of the in-adjacency neighbor-slot section (directed only).
pub const SEC_IN_NEIGHBORS: &str = "in_neighbors";
/// Name of the in-adjacency edge-id-slot section (directed only).
pub const SEC_IN_EDGES: &str = "in_edges";
/// Name of the compressed out-adjacency per-row byte-offset section
/// (`u64`, `n + 1` entries; present only with [`FLAG_COMPRESSED`]).
pub const SEC_OUT_NBR_OFFSETS: &str = "out_nbr_offsets";
/// Name of the compressed out-adjacency delta-varint payload section
/// (raw bytes; present only with [`FLAG_COMPRESSED`]).
pub const SEC_OUT_NBR_DATA: &str = "out_nbr_data";
/// Compressed in-adjacency byte-offset section (directed + compressed).
pub const SEC_IN_NBR_OFFSETS: &str = "in_nbr_offsets";
/// Compressed in-adjacency payload section (directed + compressed).
pub const SEC_IN_NBR_DATA: &str = "in_nbr_data";
/// Prefix of data-column sections (`c:weights`, `c:px`, …).
pub const COLUMN_PREFIX: &str = "c:";

/// The store fingerprint: XXH64 over the counts, flags, workload class,
/// and every section checksum in TOC order. Identifies the *content* of a
/// store file independent of its path, and is what catalog entries and
/// service cache keys carry.
pub fn fingerprint(
    num_vertices: u64,
    num_edges: u64,
    flags: u32,
    workload_class: u32,
    section_checksums: impl Iterator<Item = u64>,
) -> u64 {
    let mut words = vec![num_vertices, num_edges, flags as u64, workload_class as u64];
    words.extend(section_checksums);
    crate::xxh::xxh64_words(&words, 0)
}

/// Whether `(u32, u32)` is laid out as two consecutive little `u32`s with
/// no padding. Tuples are `repr(Rust)` — their layout is not guaranteed —
/// so the zero-copy cast between the stored interleaved pair section and
/// `&[(u32, u32)]` is gated on this runtime probe; when it fails, readers
/// and writers fall back to an element-wise copy.
pub fn pair_layout_matches() -> bool {
    if std::mem::size_of::<(u32, u32)>() != 8 || std::mem::align_of::<(u32, u32)>() != 4 {
        return false;
    }
    let probe: (u32, u32) = (0x0102_0304, 0x0506_0708);
    let p = &probe as *const (u32, u32) as *const u8;
    // SAFETY: size checked to be exactly 8 bytes above.
    let bytes = unsafe { std::slice::from_raw_parts(p, 8) };
    let first = u32::from_ne_bytes(bytes[0..4].try_into().expect("4 bytes"));
    let second = u32::from_ne_bytes(bytes[4..8].try_into().expect("4 bytes"));
    first == probe.0 && second == probe.1
}

/// View a `u32` slice as raw bytes.
pub fn u32_bytes(v: &[u32]) -> &[u8] {
    // SAFETY: u32 has no padding or invalid bit patterns; alignment of u8
    // is 1.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v)) }
}

/// View a `u64` slice as raw bytes.
pub fn u64_bytes(v: &[u64]) -> &[u8] {
    // SAFETY: as `u32_bytes`.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v)) }
}

/// View an `f64` slice as raw bytes.
pub fn f64_bytes(v: &[f64]) -> &[u8] {
    // SAFETY: as `u32_bytes`.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v)) }
}

/// Serialize an edge list as interleaved `u32` pairs: a zero-copy view
/// when the tuple layout permits, an element-wise copy otherwise.
pub fn pair_bytes(v: &[(u32, u32)]) -> std::borrow::Cow<'_, [u8]> {
    if pair_layout_matches() {
        // SAFETY: probe above confirmed the layout is two packed u32s.
        let bytes = unsafe {
            std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v))
        };
        return std::borrow::Cow::Borrowed(bytes);
    }
    let mut out = Vec::with_capacity(v.len() * 8);
    for &(a, b) in v {
        out.extend_from_slice(&a.to_ne_bytes());
        out.extend_from_slice(&b.to_ne_bytes());
    }
    std::borrow::Cow::Owned(out)
}

/// Workload metadata carried in the JSON `meta` section: everything needed
/// to reconstruct the non-topology half of a workload, plus provenance.
/// Serialized as a flat JSON object via the store's dependency-free codec
/// (see [`crate::json`] — a module-private helper).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreMeta {
    /// Workload class name (`powerlaw`, `ratings`, `matrix`, `grid`, `mrf`).
    pub class: String,
    /// Ratings: number of user vertices.
    pub num_users: usize,
    /// Grid: side length.
    pub side: usize,
    /// Grid/MRF: labels per variable.
    pub num_labels: usize,
    /// Grid: Potts smoothing strength.
    pub smoothing: f64,
    /// Provenance string (`synthetic:<class>` or `ingest:edgelist`).
    pub source: String,
    /// Generator or ingest seed (drives derived columns such as KM points).
    pub seed: u64,
}

impl StoreMeta {
    /// Serialize to the JSON bytes stored in the `meta` section.
    pub fn to_json_bytes(&self) -> Vec<u8> {
        let mut w = json::ObjWriter::new();
        w.str_field("class", &self.class);
        w.u64_field("num_users", self.num_users as u64);
        w.u64_field("side", self.side as u64);
        w.u64_field("num_labels", self.num_labels as u64);
        w.f64_field("smoothing", self.smoothing);
        w.str_field("source", &self.source);
        w.u64_field("seed", self.seed);
        w.finish().into_bytes()
    }

    /// Parse the `meta` section. Absent optional fields default; a missing
    /// or non-string `class` is corruption.
    pub fn from_json_bytes(bytes: &[u8]) -> Result<StoreMeta, StoreError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| StoreError::Corrupt("meta section is not UTF-8".to_string()))?;
        let class = json::str_field(text, "class")
            .ok_or_else(|| StoreError::Corrupt("meta section missing `class`".to_string()))?;
        Ok(StoreMeta {
            class,
            num_users: json::u64_field(text, "num_users").unwrap_or(0) as usize,
            side: json::u64_field(text, "side").unwrap_or(0) as usize,
            num_labels: json::u64_field(text, "num_labels").unwrap_or(0) as usize,
            smoothing: json::f64_field(text, "smoothing").unwrap_or(0.0),
            source: json::str_field(text, "source").unwrap_or_default(),
            seed: json::u64_field(text, "seed").unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Header {
        Header {
            version: FORMAT_VERSION,
            flags: FLAG_DIRECTED | FLAG_SORTED_ROWS,
            num_vertices: 100,
            num_edges: 250,
            section_count: 7,
            workload_class: 0,
            file_len: 4096,
            fingerprint: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn header_round_trips() {
        let h = header();
        let bytes = h.encode();
        assert_eq!(Header::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn header_rejects_bad_magic() {
        let mut bytes = header().encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(Header::decode(&bytes), Err(StoreError::BadMagic)));
    }

    #[test]
    fn header_rejects_short_input() {
        let bytes = header().encode();
        assert!(matches!(
            Header::decode(&bytes[..40]),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn header_rejects_version_and_endianness() {
        // Version 4 is from the future: a stale reader (like this one, for
        // a hypothetical v4) must fail closed with the typed error.
        let mut v4 = header().encode();
        v4[8..10].copy_from_slice(&4u16.to_ne_bytes());
        // Re-stamp the checksum so the version check is what fires.
        let sum = xxh64(&v4[0..56], 0);
        v4[56..64].copy_from_slice(&sum.to_ne_bytes());
        assert!(matches!(
            Header::decode(&v4),
            Err(StoreError::UnsupportedVersion(4))
        ));

        // Versions 2 (compressed) and 3 (padded compressed) are supported.
        for version in [FORMAT_VERSION_COMPRESSED, FORMAT_VERSION_PADDED] {
            let mut v = header().encode();
            v[8..10].copy_from_slice(&version.to_ne_bytes());
            let sum = xxh64(&v[0..56], 0);
            v[56..64].copy_from_slice(&sum.to_ne_bytes());
            assert_eq!(Header::decode(&v).unwrap().version, version);
        }

        // The compressed flag on a version-1 header is a fail-closed error:
        // a pre-compression writer can never have produced it.
        let mut flagged = header().encode();
        let flags = header().flags | FLAG_COMPRESSED;
        flagged[12..16].copy_from_slice(&flags.to_ne_bytes());
        let sum = xxh64(&flagged[0..56], 0);
        flagged[56..64].copy_from_slice(&sum.to_ne_bytes());
        assert!(matches!(
            Header::decode(&flagged),
            Err(StoreError::Corrupt(_))
        ));

        let mut swapped = header().encode();
        swapped[10..12].copy_from_slice(&ENDIAN_TAG.swap_bytes().to_ne_bytes());
        assert!(matches!(
            Header::decode(&swapped),
            Err(StoreError::Endianness)
        ));
    }

    #[test]
    fn header_rejects_flipped_checksum_byte() {
        let mut bytes = header().encode();
        bytes[56] ^= 0x01;
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        // A flipped payload byte is equally fatal.
        let mut bytes = header().encode();
        bytes[20] ^= 0x01;
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn section_entry_round_trips() {
        let e = SectionEntry {
            name: "out_neighbors".to_string(),
            elem: ElemType::U32,
            offset: 512,
            len_bytes: 1000,
            checksum: 42,
        };
        let bytes = e.encode().unwrap();
        assert_eq!(SectionEntry::decode(&bytes).unwrap(), e);
    }

    #[test]
    fn section_entry_rejects_oversized_name() {
        let e = SectionEntry {
            name: "x".repeat(33),
            elem: ElemType::Bytes,
            offset: 0,
            len_bytes: 0,
            checksum: 0,
        };
        assert!(e.encode().is_err());
    }

    #[test]
    fn meta_round_trips() {
        let meta = StoreMeta {
            class: "grid".to_string(),
            num_users: 0,
            side: 32,
            num_labels: 2,
            smoothing: 1.5,
            source: "synthetic:grid".to_string(),
            seed: 99,
        };
        let bytes = meta.to_json_bytes();
        assert_eq!(StoreMeta::from_json_bytes(&bytes).unwrap(), meta);
        assert!(StoreMeta::from_json_bytes(b"{}").is_err());
        assert!(StoreMeta::from_json_bytes(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn align_up_is_monotone_and_aligned() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 64);
        assert_eq!(align_up(64), 64);
        assert_eq!(align_up(65), 128);
    }
}
