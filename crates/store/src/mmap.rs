//! Read-only file mappings without a libc dependency.
//!
//! The workspace carries no FFI crates, so on Linux the `mmap`/`munmap`
//! syscalls are issued directly via inline assembly (x86_64 and aarch64).
//! Every other platform — and any mapping failure — falls back to reading
//! the file into an owned, 8-byte-aligned buffer, which preserves the API
//! (and the alignment guarantees the reader relies on) at the cost of one
//! copy. [`Mapping::is_mmap`] reports which path was taken so callers can
//! account resident bytes honestly.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};

/// An immutable byte region backed either by a private read-only file
/// mapping or by an owned aligned buffer.
pub struct Mapping {
    ptr: *const u8,
    len: usize,
    /// `Some` when the bytes were read into an owned buffer (the fallback
    /// path); `None` when `ptr` points at a kernel mapping that must be
    /// unmapped on drop. The buffer is `u64`-typed purely for alignment.
    owned: Option<Vec<u64>>,
}

// SAFETY: the region is immutable for the lifetime of the value; both the
// kernel mapping (MAP_PRIVATE, PROT_READ) and the owned buffer are safe to
// read from any thread.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Map `file` read-only (falling back to an in-memory copy when
    /// mapping is unsupported or fails).
    pub fn map_file(file: &mut File) -> io::Result<Mapping> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to map on this platform",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Mapping {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
                owned: Some(Vec::new()),
            });
        }
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            // SAFETY: `file` is a valid open descriptor and `len` is its
            // exact current length.
            if let Ok(ptr) = unsafe { sys::mmap_readonly(file, len) } {
                return Ok(Mapping {
                    ptr,
                    len,
                    owned: None,
                });
            }
        }
        Mapping::read_into_buffer(file, len)
    }

    /// Portable fallback: read the whole file into an 8-byte-aligned
    /// owned buffer.
    fn read_into_buffer(file: &mut File, len: usize) -> io::Result<Mapping> {
        let words = len.div_ceil(8);
        let mut buf = vec![0u64; words];
        let ptr = buf.as_mut_ptr() as *mut u8;
        // SAFETY: `buf` owns `words * 8 >= len` initialized bytes; the u64
        // buffer is only ever viewed as bytes from here on.
        let bytes = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(bytes)?;
        Ok(Mapping {
            ptr: ptr as *const u8,
            len,
            owned: Some(buf),
        })
    }

    /// The mapped bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr..ptr + len` is valid and immutable for `self`'s
        // lifetime (kernel mapping or owned buffer).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when backed by a real kernel mapping (zero heap bytes);
    /// false when the portable read-into-buffer fallback was used.
    #[inline]
    pub fn is_mmap(&self) -> bool {
        self.owned.is_none()
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if self.owned.is_none() && self.len > 0 {
            // SAFETY: `ptr` came from a successful mmap of exactly `len`
            // bytes and has not been unmapped yet.
            unsafe { sys::munmap(self.ptr, self.len) };
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping")
            .field("len", &self.len)
            .field("mmap", &self.is_mmap())
            .finish()
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// Issue the raw `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)`
    /// syscall. Returns the mapped address or the kernel's errno.
    pub unsafe fn mmap_readonly(file: &File, len: usize) -> io::Result<*const u8> {
        let fd = file.as_raw_fd() as isize;
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 9isize => ret, // __NR_mmap
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        #[cfg(target_arch = "aarch64")]
        {
            std::arch::asm!(
                "svc 0",
                in("x8") 222isize, // __NR_mmap
                inlateout("x0") 0usize => ret,
                in("x1") len,
                in("x2") PROT_READ,
                in("x3") MAP_PRIVATE,
                in("x4") fd,
                in("x5") 0usize,
                options(nostack)
            );
        }
        if ret < 0 && ret > -4096 {
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(ret as *const u8)
    }

    /// Issue the raw `munmap(addr, len)` syscall; errors are ignored by
    /// the caller (drop path).
    pub unsafe fn munmap(addr: *const u8, len: usize) {
        let _ret: isize;
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 11isize => _ret, // __NR_munmap
                in("rdi") addr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        #[cfg(target_arch = "aarch64")]
        {
            std::arch::asm!(
                "svc 0",
                in("x8") 215isize, // __NR_munmap
                inlateout("x0") addr => _ret,
                in("x1") len,
                options(nostack)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphmine-mmap-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&data)
            .unwrap();
        let mut f = File::open(&path).unwrap();
        let m = Mapping::map_file(&mut f).unwrap();
        assert_eq!(m.len(), data.len());
        assert_eq!(m.bytes(), &data[..]);
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        assert!(m.is_mmap());
        drop(m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let mut f = File::open(&path).unwrap();
        let m = Mapping::map_file(&mut f).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.bytes(), &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fallback_buffer_is_eight_byte_aligned() {
        let path = temp_path("align");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[1, 2, 3, 4, 5])
            .unwrap();
        let mut f = File::open(&path).unwrap();
        let m = Mapping::read_into_buffer(&mut f, 5).unwrap();
        assert_eq!(m.bytes(), &[1, 2, 3, 4, 5]);
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0);
        assert!(!m.is_mmap());
        std::fs::remove_file(&path).ok();
    }
}
