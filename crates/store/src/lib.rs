//! `graphmine-store` — versioned on-disk binary CSR graph store.
//!
//! Every job in the service today either regenerates a synthetic graph or
//! re-parses a text edge list; the LRU cache is the only thing standing
//! between a cold request and a full rebuild. This crate closes that gap
//! with a durable format designed so that *opening* a packed graph costs a
//! memory-map plus O(1) page touches, regardless of graph size:
//!
//! * **Format** ([`format`]): a 64-byte header (magic, format version,
//!   endianness tag, flags, counts, fingerprint, header checksum) followed
//!   by a table of 64-byte section descriptors and 64-byte-aligned data
//!   sections — degree-prefix arrays, neighbor arrays, the canonical edge
//!   list, and optional per-edge/per-vertex data columns — each with an
//!   XXH64 checksum.
//! * **Writer** ([`writer`]): packs sections through an atomic temp-sibling
//!   write (`.tmp` + `rename`), so a crash mid-pack never leaves a
//!   half-written store visible.
//! * **Reader** ([`reader`]): memory-maps the file and exposes the CSR
//!   arrays as zero-copy [`graphmine_graph::Graph`] views via
//!   [`graphmine_graph::SharedSlice`] — no neighbor-array copy on load.
//!   Structural metadata and the header checksum are validated eagerly on
//!   open; full per-section checksums are validated by the explicit
//!   [`reader::StoredGraph::verify`] pass (run at ingest and by
//!   `graphmine graph verify`).
//! * **Catalog** ([`catalog`]): a directory mapping validated graph names
//!   to store files, with per-file fingerprints that feed the service's
//!   cache keys and interoperate with the engine's checkpoint
//!   vertex/edge-count validation.
//! * **Ingest** ([`ingest`]): resumable, journaled chunked upload sessions
//!   backing the service's `POST /graphs` bulk-ingest endpoint.
//! * **Scrub** ([`scrub`]): a self-healing verification sweep over a whole
//!   catalog — every store file is checksum-verified, corrupt files are
//!   quarantined (renamed to `*.corrupt`), and graphs packed from a
//!   still-present edge-list source are re-packed in place.

#![warn(missing_docs)]

pub mod catalog;
pub mod format;
pub mod ingest;
mod json;
pub mod mmap;
pub mod reader;
pub mod scrub;
pub mod workload;
pub mod writer;
pub mod xxh;

pub use catalog::{Catalog, CatalogEntry};
pub use format::{ElemType, Header, SectionEntry, StoreMeta};
pub use ingest::{
    gc_sessions, ChunkAck, IngestConfig, IngestGcReport, IngestSession, DEFAULT_INGEST_EXPIRY,
};
pub use reader::StoredGraph;
pub use scrub::{gc_orphan_temps, scrub_catalog, ScrubOutcome, ScrubReport};
pub use workload::{
    class_code, class_name, finalize_ingest, finalize_ingest_with, infer_vertex_count,
    load_workload, pack_workload, pack_workload_with, rebuild_workload_plain,
};
pub use xxh::xxh64;

use std::fmt;
use std::io;

/// Typed failures for every store operation. Corrupted or truncated input
/// must surface here — never as a panic or undefined behavior.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the store magic.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion(u16),
    /// The file was written on a platform with the opposite byte order.
    Endianness,
    /// The file is shorter than its own metadata claims.
    Truncated {
        /// Bytes the metadata requires.
        needed: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A section's stored checksum does not match its bytes.
    ChecksumMismatch {
        /// Section name (or `"header"`).
        section: String,
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// A full-verify pass found one or more corrupt payload sections. The
    /// store file should be quarantined and re-packed (see [`scrub`]);
    /// sections not listed are intact and may still be readable.
    CorruptSection {
        /// Names of every section whose checksum failed.
        sections: Vec<String>,
    },
    /// Any other structural inconsistency (bad TOC, bad meta, invalid CSR).
    Corrupt(String),
    /// A graph or session name failed validation or shadows a path.
    InvalidName(String),
    /// The named graph or session does not exist.
    NotFound(String),
    /// An ingest request conflicts with recorded session state.
    IngestConflict(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a graphmine store file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported store format version {v}")
            }
            StoreError::Endianness => {
                write!(f, "store file written with opposite byte order")
            }
            StoreError::Truncated { needed, actual } => {
                write!(f, "store file truncated: need {needed} bytes, have {actual}")
            }
            StoreError::ChecksumMismatch {
                section,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in section `{section}`: stored {expected:#018x}, computed {actual:#018x}"
            ),
            StoreError::CorruptSection { sections } => write!(
                f,
                "corrupt store section(s): {} (quarantine and re-pack)",
                sections.join(", ")
            ),
            StoreError::Corrupt(msg) => write!(f, "corrupt store file: {msg}"),
            StoreError::InvalidName(name) => {
                write!(f, "invalid graph name `{name}` (want [A-Za-z0-9_-]{{1,64}})")
            }
            StoreError::NotFound(name) => write!(f, "graph `{name}` not found"),
            StoreError::IngestConflict(msg) => write!(f, "ingest conflict: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}
