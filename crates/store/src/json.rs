//! Minimal flat-JSON codec for the store's own metadata records.
//!
//! The meta section and ingest state files are tiny flat objects with a
//! fixed, store-controlled schema; encoding them by hand keeps the store
//! core dependency-free (std only), which in turn lets the whole
//! pack/verify/load pipeline be exercised without any external crate. The
//! output is ordinary JSON, so external tools (and the service, which does
//! use `serde_json`) read it fine.

use std::fmt::Write as _;

/// Incrementally build a one-level JSON object.
pub(crate) struct ObjWriter {
    buf: String,
    first: bool,
}

impl ObjWriter {
    pub(crate) fn new() -> ObjWriter {
        ObjWriter {
            buf: "{".to_string(),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{key}\":");
    }

    pub(crate) fn str_field(&mut self, key: &str, val: &str) {
        self.key(key);
        self.buf.push('"');
        for c in val.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\t' => self.buf.push_str("\\t"),
                '\r' => self.buf.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    pub(crate) fn u64_field(&mut self, key: &str, val: u64) {
        self.key(key);
        let _ = write!(self.buf, "{val}");
    }

    pub(crate) fn bool_field(&mut self, key: &str, val: bool) {
        self.key(key);
        self.buf.push_str(if val { "true" } else { "false" });
    }

    pub(crate) fn f64_field(&mut self, key: &str, val: f64) {
        self.key(key);
        // `{:?}` prints round-trippable f64 (always with a decimal point
        // or exponent), which is valid JSON for finite values.
        let _ = write!(self.buf, "{val:?}");
    }

    pub(crate) fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Locate the raw value token for `key` in a flat JSON object. Returns the
/// token with surrounding whitespace trimmed (strings keep their quotes).
fn raw_value<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let mut search_from = 0;
    loop {
        let at = json[search_from..].find(&needle)? + search_from;
        let after = &json[at + needle.len()..];
        let trimmed = after.trim_start();
        if let Some(rest) = trimmed.strip_prefix(':') {
            let rest = rest.trim_start();
            if rest.starts_with('"') {
                // Scan to the closing unescaped quote.
                let bytes = rest.as_bytes();
                let mut i = 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => return Some(&rest[..=i]),
                        _ => i += 1,
                    }
                }
                return None;
            }
            let end = rest
                .find(|c: char| c == ',' || c == '}')
                .unwrap_or(rest.len());
            return Some(rest[..end].trim_end());
        }
        // The needle matched inside a string value; keep looking.
        search_from = at + needle.len();
    }
}

/// Read a string field; `None` when absent or not a string.
pub(crate) fn str_field(json: &str, key: &str) -> Option<String> {
    let raw = raw_value(json, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            'r' => out.push('\r'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Read an unsigned integer field; `None` when absent or malformed.
pub(crate) fn u64_field(json: &str, key: &str) -> Option<u64> {
    raw_value(json, key)?.parse().ok()
}

/// Read a boolean field; `None` when absent or malformed.
pub(crate) fn bool_field(json: &str, key: &str) -> Option<bool> {
    match raw_value(json, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// Read a float field; `None` when absent or malformed.
pub(crate) fn f64_field(json: &str, key: &str) -> Option<f64> {
    raw_value(json, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_field_type() {
        let mut w = ObjWriter::new();
        w.str_field("class", "powerlaw");
        w.str_field("escaped", "a\"b\\c\nd");
        w.u64_field("count", u64::MAX);
        w.bool_field("directed", true);
        w.f64_field("smoothing", 2.5);
        w.f64_field("whole", 3.0);
        let json = w.finish();
        assert_eq!(str_field(&json, "class").as_deref(), Some("powerlaw"));
        assert_eq!(str_field(&json, "escaped").as_deref(), Some("a\"b\\c\nd"));
        assert_eq!(u64_field(&json, "count"), Some(u64::MAX));
        assert_eq!(bool_field(&json, "directed"), Some(true));
        assert_eq!(f64_field(&json, "smoothing"), Some(2.5));
        assert_eq!(f64_field(&json, "whole"), Some(3.0));
        assert_eq!(str_field(&json, "missing"), None);
    }

    #[test]
    fn tolerates_whitespace_and_key_lookalikes_in_strings() {
        let json = r#"{ "a" : "x" , "trap": "\"b\": 9", "b" : 7 }"#;
        assert_eq!(str_field(json, "a").as_deref(), Some("x"));
        assert_eq!(u64_field(json, "b"), Some(7));
    }

    #[test]
    fn whole_floats_stay_json_numbers() {
        let mut w = ObjWriter::new();
        w.f64_field("x", 3.0);
        let json = w.finish();
        assert_eq!(json, "{\"x\":3.0}");
    }
}
