//! Property-based tests over all synthetic generators.

use graphmine_gen::{
    grid_graph, matrix_graph, mrf_graph, powerlaw_graph, BipartiteConfig, GridMrf, MrfConfig,
    PowerLawConfig, RatingGraph,
};
use graphmine_graph::{is_connected, DegreeStats};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Power-law graphs respect the configured size within tolerance and
    /// always validate. Duplicate-sample loss grows as graphs shrink and
    /// skew increases (α → 2.0 concentrates both endpoints on a few hubs),
    /// so the lower bound is scale-aware: tiny graphs may realize only
    /// half the requested edges, larger ones must reach 80%.
    #[test]
    fn powerlaw_well_formed(nedges in 200usize..5_000, alpha in 2.0f64..3.0, seed in 0u64..10_000) {
        let g = powerlaw_graph(&PowerLawConfig::new(nedges, alpha, seed));
        prop_assert!(g.validate().is_ok());
        let m = g.num_edges();
        let floor = if nedges >= 2_000 { nedges * 8 / 10 } else { nedges * 4 / 10 };
        prop_assert!(m >= floor, "only {} of {} edges realized", m, nedges);
        prop_assert!(m <= nedges + nedges / 10 + 16);
    }

    /// Mean degree lands near the configured target.
    #[test]
    fn powerlaw_mean_degree(nedges in 2_000usize..8_000, seed in 0u64..1_000) {
        let g = powerlaw_graph(&PowerLawConfig::new(nedges, 2.5, seed));
        let stats = DegreeStats::of(&g);
        prop_assert!((stats.mean - 16.0).abs() < 6.0, "mean degree {}", stats.mean);
    }

    /// Rating graphs are strictly bipartite with in-scale ratings.
    #[test]
    fn ratings_bipartite(nedges in 200usize..4_000, alpha in 2.0f64..3.0, seed in 0u64..10_000) {
        let rg = RatingGraph::generate(&BipartiteConfig::new(nedges, alpha, seed));
        for &(s, d) in rg.graph.edge_list() {
            prop_assert!(rg.is_user(s) != rg.is_user(d));
        }
        prop_assert!(rg.ratings.iter().all(|r| r.is_finite() && *r > 0.0));
    }

    /// Matrix systems are strictly diagonally dominant with uniform degree.
    #[test]
    fn matrices_dominant(nrows in 8usize..300, degree in 2usize..12, seed in 0u64..10_000) {
        let sys = matrix_graph(nrows, degree, seed);
        let expect = degree.min(nrows - 1);
        for v in sys.graph.vertices() {
            prop_assert_eq!(sys.graph.out_degree(v), expect);
            let row: f64 = sys
                .graph
                .incident(v, graphmine_graph::Direction::Out)
                .map(|(e, _)| sys.off_diagonal[e as usize].abs())
                .sum();
            prop_assert!(sys.diagonal[v as usize] > row);
        }
    }

    /// Grid MRFs have the exact lattice shape.
    #[test]
    fn grids_exact(side in 2usize..40) {
        let g = grid_graph(side);
        prop_assert_eq!(g.num_vertices(), side * side);
        prop_assert_eq!(g.num_edges(), 2 * side * (side - 1));
        prop_assert!(is_connected(&g));
    }

    /// MRF generator produces the exact requested edge count, connected.
    #[test]
    fn mrfs_exact_edges(extra in 0usize..400, seed in 0u64..10_000) {
        let nedges = 60 + extra;
        let mrf = mrf_graph(&MrfConfig::new(nedges, seed));
        prop_assert_eq!(mrf.graph.num_edges(), nedges);
        prop_assert!(is_connected(&mrf.graph));
        prop_assert_eq!(mrf.unary.len(), mrf.graph.num_vertices());
    }

    /// Grid MRF priors are normalized log-potentials.
    #[test]
    fn grid_mrf_priors_normalized(side in 2usize..20, labels in 2usize..5, seed in 0u64..10_000) {
        let mrf = GridMrf::generate(side, labels, seed);
        for p in &mrf.priors {
            prop_assert_eq!(p.len(), labels);
            let max = p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((max).abs() < 1e-9, "prior max {} not normalized", max);
        }
    }
}

#[test]
fn all_generators_deterministic() {
    let p1 = powerlaw_graph(&PowerLawConfig::new(1_000, 2.5, 7));
    let p2 = powerlaw_graph(&PowerLawConfig::new(1_000, 2.5, 7));
    assert_eq!(p1.edge_list(), p2.edge_list());

    let r1 = RatingGraph::generate(&BipartiteConfig::new(800, 2.5, 7));
    let r2 = RatingGraph::generate(&BipartiteConfig::new(800, 2.5, 7));
    assert_eq!(r1.ratings, r2.ratings);

    let m1 = matrix_graph(64, 4, 7);
    let m2 = matrix_graph(64, 4, 7);
    assert_eq!(m1.rhs, m2.rhs);

    let g1 = GridMrf::generate(8, 2, 7);
    let g2 = GridMrf::generate(8, 2, 7);
    assert_eq!(g1.priors, g2.priors);

    let f1 = mrf_graph(&MrfConfig::new(100, 7));
    let f2 = mrf_graph(&MrfConfig::new(100, 7));
    assert_eq!(f1.pairwise, f2.pairwise);
}
