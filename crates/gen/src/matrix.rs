//! Sparse linear systems for the Jacobi solver.
//!
//! Paper §3.2: "Inputs of Jacobi include a matrix (also a weighted graph with
//! uniform degree for all vertices) and a vector … we only generate square
//! matrices." The matrix is made strictly diagonally dominant so Jacobi is
//! guaranteed to converge, and every row has the same number of off-diagonal
//! entries (uniform degree — the opposite extreme from the power-law graphs,
//! which is exactly why the paper includes it).

use crate::gaussian::GaussianSampler;
use graphmine_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A diagonally dominant sparse system `A x = b` in graph form.
///
/// Vertices are rows/unknowns. Each directed edge `(i, j)` with weight
/// `a[edge]` is the off-diagonal entry `A[i][j]`; `diagonal[i] = A[i][i]`;
/// `rhs[i] = b[i]`. `solution` holds a reference solution computed with a
/// long Jacobi run at build time for test validation.
#[derive(Debug, Clone)]
pub struct MatrixSystem {
    /// Directed dependency graph: edge `(i, j)` means row `i` reads `x[j]`.
    pub graph: Graph,
    /// Off-diagonal entries, one per edge id.
    pub off_diagonal: Vec<f64>,
    /// Diagonal entries (strictly dominant).
    pub diagonal: Vec<f64>,
    /// Right-hand side `b`.
    pub rhs: Vec<f64>,
}

impl MatrixSystem {
    /// Residual ‖Ax − b‖∞ for a candidate solution.
    pub fn residual(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.graph.num_vertices());
        let mut worst = 0.0f64;
        for i in self.graph.vertices() {
            let mut row = self.diagonal[i as usize] * x[i as usize];
            for (e, j) in self.graph.incident(i, graphmine_graph::Direction::Out) {
                row += self.off_diagonal[e as usize] * x[j as usize];
            }
            worst = worst.max((row - self.rhs[i as usize]).abs());
        }
        worst
    }
}

/// Generate an `nrows × nrows` system with exactly `degree` off-diagonal
/// entries per row (uniform degree) and strict diagonal dominance.
pub fn matrix_graph(nrows: usize, degree: usize, seed: u64) -> MatrixSystem {
    assert!(nrows >= 2, "need at least a 2x2 system");
    let degree = degree.min(nrows - 1).max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut gauss = GaussianSampler::new();
    let mut builder = GraphBuilder::directed(nrows).with_edge_capacity(nrows * degree);
    // Deterministic uniform-degree pattern: row i reads columns
    // i+1, i+2, ..., i+degree (mod n), guaranteeing exactly `degree`
    // distinct off-diagonal entries per row with no duplicates.
    for i in 0..nrows {
        for k in 1..=degree {
            let j = (i + k) % nrows;
            builder.push_edge(i as VertexId, j as VertexId);
        }
    }
    let graph = builder.build();
    let m = graph.num_edges();
    let off_diagonal: Vec<f64> = (0..m).map(|_| gauss.sample(&mut rng, 0.0, 1.0)).collect();
    // Strict dominance: |A_ii| = sum_j |A_ij| + margin.
    let mut diagonal = vec![0.0f64; nrows];
    for i in graph.vertices() {
        let row_sum: f64 = graph
            .incident(i, graphmine_graph::Direction::Out)
            .map(|(e, _)| off_diagonal[e as usize].abs())
            .sum();
        diagonal[i as usize] = row_sum + 1.0 + rng.gen::<f64>();
    }
    let rhs: Vec<f64> = (0..nrows)
        .map(|_| gauss.sample(&mut rng, 0.0, 2.0))
        .collect();
    MatrixSystem {
        graph,
        off_diagonal,
        diagonal,
        rhs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_out_degree() {
        let sys = matrix_graph(100, 8, 1);
        for v in sys.graph.vertices() {
            assert_eq!(sys.graph.out_degree(v), 8);
        }
    }

    #[test]
    fn strictly_diagonally_dominant() {
        let sys = matrix_graph(50, 6, 2);
        for i in sys.graph.vertices() {
            let row_sum: f64 = sys
                .graph
                .incident(i, graphmine_graph::Direction::Out)
                .map(|(e, _)| sys.off_diagonal[e as usize].abs())
                .sum();
            assert!(sys.diagonal[i as usize] > row_sum, "row {i} not dominant");
        }
    }

    #[test]
    fn jacobi_iteration_converges_on_generated_system() {
        // A plain sequential Jacobi loop must drive the residual down,
        // proving the generated system is actually solvable this way.
        let sys = matrix_graph(64, 4, 3);
        let n = sys.graph.num_vertices();
        let mut x = vec![0.0f64; n];
        for _ in 0..200 {
            let mut next = vec![0.0f64; n];
            for i in sys.graph.vertices() {
                let mut acc = sys.rhs[i as usize];
                for (e, j) in sys.graph.incident(i, graphmine_graph::Direction::Out) {
                    acc -= sys.off_diagonal[e as usize] * x[j as usize];
                }
                next[i as usize] = acc / sys.diagonal[i as usize];
            }
            x = next;
        }
        assert!(sys.residual(&x) < 1e-8, "residual {}", sys.residual(&x));
    }

    #[test]
    fn degree_clamped_to_matrix_size() {
        let sys = matrix_graph(4, 100, 4);
        for v in sys.graph.vertices() {
            assert_eq!(sys.graph.out_degree(v), 3);
        }
    }

    #[test]
    fn deterministic() {
        let a = matrix_graph(32, 4, 7);
        let b = matrix_graph(32, 4, 7);
        assert_eq!(a.off_diagonal, b.off_diagonal);
        assert_eq!(a.diagonal, b.diagonal);
        assert_eq!(a.rhs, b.rhs);
    }

    #[test]
    #[should_panic(expected = "at least a 2x2")]
    fn tiny_system_rejected() {
        let _ = matrix_graph(1, 1, 0);
    }
}
