//! Gaussian sampling via the Box–Muller transform.
//!
//! The paper generates vertex data and edge weights "randomly in Gaussian
//! distribution" (§3.2). `rand` 0.8 ships no normal distribution (that lives
//! in `rand_distr`, which is outside this project's dependency budget), so we
//! implement the polar Box–Muller method directly.

use rand::Rng;

/// A reusable standard-normal sampler that caches the spare variate the
/// polar Box–Muller transform produces, so consecutive draws cost one
/// rejection loop per *pair*.
#[derive(Debug, Clone, Default)]
pub struct GaussianSampler {
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Create a sampler with an empty cache.
    pub fn new() -> GaussianSampler {
        GaussianSampler { spare: None }
    }

    /// Draw one standard-normal variate (mean 0, variance 1).
    pub fn standard(&mut self, rng: &mut impl Rng) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            // Polar method: sample (u, v) uniform in the unit square mapped
            // to [-1, 1]^2, reject outside the unit disc.
            let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Draw a normal variate with the given `mean` and `std_dev`.
    pub fn sample(&mut self, rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard(rng)
    }

    /// Fill a vector with `n` samples from N(mean, std_dev²).
    pub fn sample_vec(
        &mut self,
        rng: &mut impl Rng,
        n: usize,
        mean: f64,
        std_dev: f64,
    ) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng, mean, std_dev)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut g = GaussianSampler::new();
        let n = 200_000;
        let samples = g.sample_vec(&mut rng, n, 0.0, 1.0);
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn shifted_and_scaled() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut g = GaussianSampler::new();
        let n = 100_000;
        let samples = g.sample_vec(&mut rng, n, 5.0, 2.0);
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let draw = || {
            let mut rng = SmallRng::seed_from_u64(123);
            let mut g = GaussianSampler::new();
            g.sample_vec(&mut rng, 16, 0.0, 1.0)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn spare_cache_alternates() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut g = GaussianSampler::new();
        assert!(g.spare.is_none());
        let _ = g.standard(&mut rng);
        assert!(g.spare.is_some());
        let _ = g.standard(&mut rng);
        assert!(g.spare.is_none());
    }

    #[test]
    fn roughly_symmetric_tail_mass() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut g = GaussianSampler::new();
        let n = 100_000;
        let above: usize = (0..n).filter(|_| g.standard(&mut rng) > 1.0).count();
        // P(Z > 1) ~ 0.1587.
        let frac = above as f64 / n as f64;
        assert!((frac - 0.1587).abs() < 0.01, "frac = {frac}");
    }
}
