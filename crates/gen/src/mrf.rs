//! Synthetic pairwise Markov Random Fields for Dual Decomposition.
//!
//! The paper's DD inputs are real-world MRFs from the PIC2011 challenge with
//! edge counts {1056, 1190, 1406, 1560} (Table 2). Those downloads are not
//! available here, so we build synthetic pairwise MRFs with *exactly* the
//! requested edge count: a spanning cycle (guaranteeing connectivity)
//! plus random chords, with random unary and Potts-style pairwise
//! log-potentials. See DESIGN.md substitution #3 for why this preserves the
//! paper's DD behavior (all vertices active every iteration; only WORK
//! responds to size).

use crate::gaussian::GaussianSampler;
use graphmine_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`mrf_graph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrfConfig {
    /// Exact number of pairwise factors (edges) to produce.
    pub nedges: usize,
    /// Number of vertices; defaults to `nedges * 2 / 3` (denser than a tree,
    /// sparser than the grid), clamped to at least 3.
    pub nvertices: Option<usize>,
    /// Number of discrete labels per variable.
    pub num_labels: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MrfConfig {
    /// Standard DD configuration with binary labels.
    pub fn new(nedges: usize, seed: u64) -> MrfConfig {
        MrfConfig {
            nedges,
            nvertices: None,
            num_labels: 2,
            seed,
        }
    }

    fn resolved_vertices(&self) -> usize {
        self.nvertices.unwrap_or(self.nedges * 2 / 3).max(3)
    }
}

/// A pairwise MRF: topology, unary potentials, and pairwise potentials.
#[derive(Debug, Clone)]
pub struct MrfGraph {
    /// Undirected factor topology; one pairwise factor per edge.
    pub graph: Graph,
    /// Per-vertex unary log-potentials (`num_labels` entries each).
    pub unary: Vec<Vec<f64>>,
    /// Per-edge Potts agreement bonus (λ ≥ 0): the pairwise potential is
    /// `λ·[x_u == x_v]`.
    pub pairwise: Vec<f64>,
    /// Labels per variable.
    pub num_labels: usize,
}

/// Generate a synthetic MRF with exactly `config.nedges` edges.
///
/// Panics if `nedges < nvertices` (the spanning cycle alone needs that many)
/// or if the requested count exceeds the complete graph.
pub fn mrf_graph(config: &MrfConfig) -> MrfGraph {
    let n = config.resolved_vertices();
    let m = config.nedges;
    assert!(
        m >= n,
        "need nedges >= nvertices ({m} < {n}) for the spanning cycle"
    );
    let max_edges = n * (n - 1) / 2;
    assert!(
        m <= max_edges,
        "nedges {m} exceeds complete graph {max_edges}"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut builder = GraphBuilder::undirected(n).with_edge_capacity(m);
    // Spanning cycle for connectivity.
    let mut present = std::collections::HashSet::with_capacity(m);
    for v in 0..n as VertexId {
        let u = (v + 1) % n as VertexId;
        let key = (v.min(u), v.max(u));
        present.insert(key);
        builder.push_edge(v, u);
    }
    // Random chords until the exact target is reached.
    while present.len() < m {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if present.insert(key) {
            builder.push_edge(a, b);
        }
    }
    let graph = builder.build();
    debug_assert_eq!(graph.num_edges(), m);
    let mut gauss = GaussianSampler::new();
    let unary = (0..n)
        .map(|_| {
            (0..config.num_labels)
                .map(|_| gauss.standard(&mut rng))
                .collect()
        })
        .collect();
    let pairwise = (0..m).map(|_| rng.gen::<f64>() * 1.5).collect();
    MrfGraph {
        graph,
        unary,
        pairwise,
        num_labels: config.num_labels,
    }
}

/// Evaluate the MRF energy (to be *maximized*) of a full labelling:
/// `Σ_v unary[v][x_v] + Σ_(u,v) λ_(u,v) · [x_u == x_v]`.
pub fn mrf_energy(mrf: &MrfGraph, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), mrf.graph.num_vertices());
    let mut e: f64 = labels
        .iter()
        .enumerate()
        .map(|(v, &l)| mrf.unary[v][l])
        .sum();
    for (id, &(u, v)) in mrf.graph.edge_list().iter().enumerate() {
        if labels[u as usize] == labels[v as usize] {
            e += mrf.pairwise[id];
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_graph::is_connected;

    /// The paper's four DD workloads (Table 2).
    const PAPER_DD_EDGES: [usize; 4] = [1056, 1190, 1406, 1560];

    #[test]
    fn exact_edge_counts_for_paper_workloads() {
        for (i, &m) in PAPER_DD_EDGES.iter().enumerate() {
            let mrf = mrf_graph(&MrfConfig::new(m, i as u64));
            assert_eq!(mrf.graph.num_edges(), m);
        }
    }

    #[test]
    fn connected_topology() {
        let mrf = mrf_graph(&MrfConfig::new(200, 1));
        assert!(is_connected(&mrf.graph));
    }

    #[test]
    fn potentials_shapes() {
        let cfg = MrfConfig {
            num_labels: 4,
            ..MrfConfig::new(150, 2)
        };
        let mrf = mrf_graph(&cfg);
        assert_eq!(mrf.unary.len(), mrf.graph.num_vertices());
        assert!(mrf.unary.iter().all(|u| u.len() == 4));
        assert_eq!(mrf.pairwise.len(), 150);
        assert!(mrf.pairwise.iter().all(|&l| l >= 0.0));
    }

    #[test]
    fn energy_rewards_agreement() {
        let mrf = mrf_graph(&MrfConfig::new(60, 3));
        let n = mrf.graph.num_vertices();
        let uniform = vec![0usize; n];
        // Alternating labels disagree on (at least) the cycle edges.
        let alternating: Vec<usize> = (0..n).map(|v| v % 2).collect();
        let e_uni = mrf_energy(&mrf, &uniform);
        let e_alt = mrf_energy(&mrf, &alternating);
        // Pairwise mass: uniform earns every agreement bonus.
        let unary_uni: f64 = (0..n).map(|v| mrf.unary[v][0]).sum();
        let unary_alt: f64 = (0..n).map(|v| mrf.unary[v][v % 2]).sum();
        assert!(e_uni - unary_uni >= e_alt - unary_alt);
    }

    #[test]
    fn deterministic() {
        let a = mrf_graph(&MrfConfig::new(100, 11));
        let b = mrf_graph(&MrfConfig::new(100, 11));
        assert_eq!(a.graph.edge_list(), b.graph.edge_list());
        assert_eq!(a.pairwise, b.pairwise);
    }

    #[test]
    #[should_panic(expected = "spanning cycle")]
    fn too_few_edges_rejected() {
        let _ = mrf_graph(&MrfConfig {
            nvertices: Some(100),
            ..MrfConfig::new(50, 0)
        });
    }

    #[test]
    #[should_panic(expected = "exceeds complete graph")]
    fn too_many_edges_rejected() {
        let _ = mrf_graph(&MrfConfig {
            nvertices: Some(4),
            ..MrfConfig::new(100, 0)
        });
    }
}
