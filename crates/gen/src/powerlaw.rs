//! Power-law (scale-free) graph generation via Chung–Lu sampling.
//!
//! Given a target edge count and exponent α, each vertex `v` receives a Zipf
//! weight `w_v = (v + 1)^(-1/(α-1))`; edges are sampled by drawing both
//! endpoints independently with probability proportional to `w`. The
//! resulting *expected* degree of vertex `v` is proportional to `w_v`, which
//! yields a degree distribution `P(k) ~ k^-α` — the standard Chung–Lu
//! construction for scale-free networks.
//!
//! The paper fixes `nedges` and lets the number of vertices vary slightly
//! (§3.2: "accepting slight variation in the number of vertices"); we do the
//! same by deriving `n` from `nedges` and a target mean degree.

use crate::gaussian::GaussianSampler;
use graphmine_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`powerlaw_graph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawConfig {
    /// Target number of edges (the realized count may be slightly lower
    /// after removing duplicates).
    pub nedges: usize,
    /// Power-law exponent α, typically in 2.0–3.0 (paper Eq. 1).
    pub alpha: f64,
    /// Mean degree used to derive the vertex count: `n = 2·nedges / mean`.
    pub mean_degree: f64,
    /// Whether the graph is directed.
    pub directed: bool,
    /// RNG seed (all generators are deterministic).
    pub seed: u64,
}

impl PowerLawConfig {
    /// A standard configuration matching the paper's experiment matrix:
    /// undirected, mean degree 16.
    pub fn new(nedges: usize, alpha: f64, seed: u64) -> PowerLawConfig {
        PowerLawConfig {
            nedges,
            alpha,
            mean_degree: 16.0,
            directed: false,
            seed,
        }
    }

    /// Switch to a directed graph.
    pub fn directed(mut self) -> PowerLawConfig {
        self.directed = true;
        self
    }

    /// Override the target mean degree.
    pub fn with_mean_degree(mut self, mean: f64) -> PowerLawConfig {
        self.mean_degree = mean;
        self
    }

    /// Number of vertices this configuration will produce.
    pub fn num_vertices(&self) -> usize {
        ((2.0 * self.nedges as f64 / self.mean_degree).round() as usize).max(4)
    }
}

/// Alias-free weighted endpoint sampler: inverse-CDF over cumulative Zipf
/// weights with binary search. O(log n) per draw.
struct EndpointSampler {
    cumulative: Vec<f64>,
}

impl EndpointSampler {
    fn new(n: usize, alpha: f64) -> EndpointSampler {
        assert!(alpha > 1.0, "alpha must exceed 1 (paper uses 2.0..3.0)");
        let exponent = -1.0 / (alpha - 1.0);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for v in 0..n {
            acc += ((v + 1) as f64).powf(exponent);
            cumulative.push(acc);
        }
        EndpointSampler { cumulative }
    }

    fn draw(&self, rng: &mut impl Rng) -> VertexId {
        let total = *self.cumulative.last().expect("non-empty sampler");
        let x = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < x) as VertexId
    }
}

/// Generate a scale-free graph per `config`.
///
/// Duplicate samples and self-loops are discarded and re-drawn (Chung–Lu
/// sampling concentrates both endpoints on the hubs, so at α = 2.0 a large
/// fraction of raw draws collide). Sampling continues until the distinct
/// edge target is met or a 6× attempt budget is exhausted, so the realized
/// count matches `config.nedges` except for pathologically small/skewed
/// settings — the paper's "slight variation" tolerance.
pub fn powerlaw_graph(config: &PowerLawConfig) -> Graph {
    let n = config.num_vertices();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let sampler = EndpointSampler::new(n, config.alpha);
    let mut builder = if config.directed {
        GraphBuilder::directed(n)
    } else {
        GraphBuilder::undirected(n)
    }
    .with_edge_capacity(config.nedges + config.nedges / 16);
    let mut seen = std::collections::HashSet::with_capacity(config.nedges * 2);
    let max_attempts = 6 * config.nedges + 64;
    let mut attempts = 0usize;
    while seen.len() < config.nedges && attempts < max_attempts {
        attempts += 1;
        let s = sampler.draw(&mut rng);
        let d = sampler.draw(&mut rng);
        if s == d {
            continue;
        }
        let key = if config.directed || s < d {
            (s, d)
        } else {
            (d, s)
        };
        if seen.insert(key) {
            builder.push_edge(s, d);
        }
    }
    builder.build()
}

/// Generate 2-D Gaussian vertex data (the Clustering domain's data points,
/// §3.2) for a graph with `n` vertices.
pub fn gaussian_points(n: usize, seed: u64) -> Vec<[f64; 2]> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut g = GaussianSampler::new();
    (0..n)
        .map(|_| [g.standard(&mut rng), g.standard(&mut rng)])
        .collect()
}

/// Generate Gaussian edge weights (mean 1, σ 0.25, clamped positive) for a
/// graph with `m` edges — used as SSSP distances.
pub fn gaussian_edge_weights(m: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEAD_BEEF_CAFE_F00D);
    let mut g = GaussianSampler::new();
    (0..m)
        .map(|_| g.sample(&mut rng, 1.0, 0.25).max(0.05))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_graph::{estimate_powerlaw_alpha, DegreeStats};

    #[test]
    fn realized_edge_count_close_to_target() {
        let g = powerlaw_graph(&PowerLawConfig::new(20_000, 2.5, 1));
        let m = g.num_edges();
        assert!(
            (18_000..=21_100).contains(&m),
            "realized edges {m} too far from 20k"
        );
    }

    #[test]
    fn alpha_recovered_within_tolerance() {
        // The discrete MLE on a finite Chung-Lu sample is biased toward the
        // bulk, so we require (a) a generous absolute band and (b) strict
        // monotonicity: a larger configured alpha must estimate larger.
        let mut estimates = Vec::new();
        for &alpha in &[2.0, 2.5, 3.0] {
            let g = powerlaw_graph(&PowerLawConfig::new(50_000, alpha, 42));
            let est = estimate_powerlaw_alpha(&g, 8).expect("estimable");
            assert!((est - alpha).abs() < 0.8, "alpha {alpha}: estimated {est}");
            estimates.push(est);
        }
        assert!(
            estimates.windows(2).all(|w| w[0] < w[1]),
            "estimates not monotone: {estimates:?}"
        );
    }

    #[test]
    fn smaller_alpha_is_more_skewed() {
        // α = 2.0 concentrates mass on hubs far more than α = 3.0.
        let g20 = powerlaw_graph(&PowerLawConfig::new(30_000, 2.0, 3));
        let g30 = powerlaw_graph(&PowerLawConfig::new(30_000, 3.0, 3));
        let s20 = DegreeStats::of(&g20);
        let s30 = DegreeStats::of(&g30);
        assert!(
            s20.max > 2 * s30.max,
            "max degree α=2.0: {}, α=3.0: {}",
            s20.max,
            s30.max
        );
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let a = powerlaw_graph(&PowerLawConfig::new(2_000, 2.5, 5));
        let b = powerlaw_graph(&PowerLawConfig::new(2_000, 2.5, 5));
        let c = powerlaw_graph(&PowerLawConfig::new(2_000, 2.5, 6));
        assert_eq!(a.edge_list(), b.edge_list());
        assert_ne!(a.edge_list(), c.edge_list());
    }

    #[test]
    fn directed_variant() {
        let g = powerlaw_graph(&PowerLawConfig::new(5_000, 2.5, 7).directed());
        assert!(g.is_directed());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn vertex_count_follows_mean_degree() {
        let cfg = PowerLawConfig::new(10_000, 2.5, 0).with_mean_degree(10.0);
        assert_eq!(cfg.num_vertices(), 2_000);
    }

    #[test]
    fn gaussian_points_and_weights_are_deterministic() {
        assert_eq!(gaussian_points(8, 3), gaussian_points(8, 3));
        assert_ne!(gaussian_points(8, 3), gaussian_points(8, 4));
        let w = gaussian_edge_weights(100, 1);
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn alpha_below_one_rejected() {
        let _ = powerlaw_graph(&PowerLawConfig::new(100, 0.5, 0));
    }
}
