//! The UAI Markov-Random-Field file format.
//!
//! Paper §3.2: "Inputs of DD are Markov Random Field (MRF) graphs in the
//! standard UAI file format. For DD we use real-world MRF graphs downloaded
//! from [the PIC2011 challenge]." Those downloads are no longer hosted, so
//! the study substitutes synthetic MRFs (DESIGN.md #3) — but this module
//! implements the actual format, so real UAI files can be dropped in when
//! available, and the synthetic MRFs can be exported for other solvers.
//!
//! Supported subset: `MARKOV` networks whose factors are unary or pairwise
//! — exactly what [`MrfGraph`] models. Pairwise tables are reduced to the
//! Potts agreement bonus `λ = mean(diagonal) − mean(off-diagonal)` of the
//! log-table when the table is not exactly Potts (documented lossy step;
//! the exporter always writes exact Potts tables, so export→import round
//! trips are lossless).

use crate::mrf::MrfGraph;
use graphmine_graph::GraphBuilder;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced while parsing a UAI file.
#[derive(Debug)]
pub enum UaiError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid content.
    Malformed(String),
    /// Valid UAI, but outside the supported pairwise-MRF subset.
    Unsupported(String),
}

impl fmt::Display for UaiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UaiError::Io(e) => write!(f, "i/o error: {e}"),
            UaiError::Malformed(m) => write!(f, "malformed UAI: {m}"),
            UaiError::Unsupported(m) => write!(f, "unsupported UAI: {m}"),
        }
    }
}

impl std::error::Error for UaiError {}

impl From<std::io::Error> for UaiError {
    fn from(e: std::io::Error) -> Self {
        UaiError::Io(e)
    }
}

fn malformed(m: impl Into<String>) -> UaiError {
    UaiError::Malformed(m.into())
}

/// A whitespace token stream over the whole file (UAI is token-oriented;
/// line breaks are not significant).
struct Tokens {
    items: Vec<String>,
    pos: usize,
}

impl Tokens {
    fn new(reader: impl BufRead) -> Result<Tokens, UaiError> {
        let mut items = Vec::new();
        for line in reader.lines() {
            let line = line?;
            // `c`-style comments are nonstandard but appear in the wild.
            let content = line.split("//").next().unwrap_or("");
            items.extend(content.split_whitespace().map(str::to_string));
        }
        Ok(Tokens { items, pos: 0 })
    }

    fn next(&mut self, what: &str) -> Result<&str, UaiError> {
        let t = self
            .items
            .get(self.pos)
            .ok_or_else(|| malformed(format!("unexpected end of file, wanted {what}")))?;
        self.pos += 1;
        Ok(t)
    }

    fn next_usize(&mut self, what: &str) -> Result<usize, UaiError> {
        let t = self.next(what)?;
        t.parse()
            .map_err(|_| malformed(format!("expected integer for {what}, got `{t}`")))
    }

    fn next_f64(&mut self, what: &str) -> Result<f64, UaiError> {
        let t = self.next(what)?;
        t.parse()
            .map_err(|_| malformed(format!("expected number for {what}, got `{t}`")))
    }
}

/// Parse a `MARKOV` UAI file into an [`MrfGraph`].
///
/// Requirements: every variable has the same cardinality, every factor has
/// scope 1 or 2, and at most one pairwise factor exists per variable pair.
/// Probability tables are converted to log-potentials; pairwise tables are
/// reduced to their Potts approximation (see module docs).
pub fn parse_uai(reader: impl BufRead) -> Result<MrfGraph, UaiError> {
    let mut t = Tokens::new(reader)?;
    let preamble = t.next("network type")?.to_ascii_uppercase();
    if preamble != "MARKOV" {
        return Err(UaiError::Unsupported(format!(
            "network type `{preamble}` (only MARKOV)"
        )));
    }
    let n = t.next_usize("variable count")?;
    if n == 0 {
        return Err(malformed("zero variables"));
    }
    let mut cards = Vec::with_capacity(n);
    for i in 0..n {
        cards.push(t.next_usize(&format!("cardinality of variable {i}"))?);
    }
    let labels = cards[0];
    if labels < 2 {
        return Err(UaiError::Unsupported("variables need >= 2 labels".into()));
    }
    if cards.iter().any(|&c| c != labels) {
        return Err(UaiError::Unsupported("mixed variable cardinalities".into()));
    }
    let nfactors = t.next_usize("factor count")?;
    // Factor scopes.
    let mut scopes: Vec<Vec<usize>> = Vec::with_capacity(nfactors);
    for f in 0..nfactors {
        let arity = t.next_usize(&format!("arity of factor {f}"))?;
        if arity == 0 || arity > 2 {
            return Err(UaiError::Unsupported(format!(
                "factor {f} has arity {arity} (only unary/pairwise)"
            )));
        }
        let mut scope = Vec::with_capacity(arity);
        for _ in 0..arity {
            let v = t.next_usize("scope variable")?;
            if v >= n {
                return Err(malformed(format!("factor {f} references variable {v}")));
            }
            scope.push(v);
        }
        if arity == 2 && scope[0] == scope[1] {
            return Err(malformed(format!("factor {f} is a self-pair")));
        }
        scopes.push(scope);
    }
    // Factor tables.
    let mut unary = vec![vec![0.0f64; labels]; n];
    let mut pair_list: Vec<(u32, u32, f64)> = Vec::new();
    for scope in &scopes {
        let entries = t.next_usize("table size")?;
        let expected = labels.pow(scope.len() as u32);
        if entries != expected {
            return Err(malformed(format!(
                "table size {entries}, expected {expected}"
            )));
        }
        let mut table = Vec::with_capacity(entries);
        for _ in 0..entries {
            let p = t.next_f64("table entry")?;
            if p < 0.0 {
                return Err(malformed("negative probability entry"));
            }
            table.push((p.max(1e-300)).ln());
        }
        match scope.as_slice() {
            [v] => {
                for (slot, x) in unary[*v].iter_mut().zip(table.iter()) {
                    *slot += x;
                }
            }
            [u, v] => {
                // Potts reduction: agreement bonus from the log-table.
                let mut diag = 0.0;
                let mut off = 0.0;
                for a in 0..labels {
                    for b in 0..labels {
                        let x = table[a * labels + b];
                        if a == b {
                            diag += x;
                        } else {
                            off += x;
                        }
                    }
                }
                let lambda = diag / labels as f64 - off / (labels * (labels - 1)) as f64;
                pair_list.push((*u as u32, *v as u32, lambda));
            }
            _ => unreachable!("arity checked above"),
        }
    }
    // Duplicate pairs are outside the supported subset.
    {
        let mut keys: Vec<(u32, u32)> = pair_list
            .iter()
            .map(|&(u, v, _)| (u.min(v), u.max(v)))
            .collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        if keys.len() != before {
            return Err(UaiError::Unsupported(
                "multiple pairwise factors over one variable pair".into(),
            ));
        }
    }
    let mut builder = GraphBuilder::undirected(n).with_edge_capacity(pair_list.len());
    for &(u, v, _) in &pair_list {
        builder.push_edge(u, v);
    }
    let graph = builder.build();
    // Builder sorts canonical edges; re-associate λ by endpoint key.
    let lambda_of: std::collections::HashMap<(u32, u32), f64> = pair_list
        .iter()
        .map(|&(u, v, l)| ((u.min(v), u.max(v)), l))
        .collect();
    let pairwise = graph
        .edge_list()
        .iter()
        .map(|&(s, d)| lambda_of[&(s.min(d), s.max(d))])
        .collect();
    Ok(MrfGraph {
        graph,
        unary,
        pairwise,
        num_labels: labels,
    })
}

/// Write an [`MrfGraph`] as a `MARKOV` UAI file (unary factor per variable,
/// exact Potts pairwise tables; probabilities are `exp` of the stored
/// log-potentials).
pub fn write_uai(mut writer: impl Write, mrf: &MrfGraph) -> std::io::Result<()> {
    let n = mrf.graph.num_vertices();
    let l = mrf.num_labels;
    writeln!(writer, "MARKOV")?;
    writeln!(writer, "{n}")?;
    let cards: Vec<String> = (0..n).map(|_| l.to_string()).collect();
    writeln!(writer, "{}", cards.join(" "))?;
    let m = mrf.graph.num_edges();
    writeln!(writer, "{}", n + m)?;
    for v in 0..n {
        writeln!(writer, "1 {v}")?;
    }
    for &(s, d) in mrf.graph.edge_list() {
        writeln!(writer, "2 {s} {d}")?;
    }
    for u in &mrf.unary {
        writeln!(writer, "{l}")?;
        let row: Vec<String> = u.iter().map(|x| format!("{}", x.exp())).collect();
        writeln!(writer, "{}", row.join(" "))?;
    }
    for lam in &mrf.pairwise {
        writeln!(writer, "{}", l * l)?;
        let mut row = Vec::with_capacity(l * l);
        for a in 0..l {
            for b in 0..l {
                row.push(format!("{}", if a == b { lam.exp() } else { 1.0 }));
            }
        }
        writeln!(writer, "{}", row.join(" "))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrf::{mrf_graph, MrfConfig};
    use std::io::Cursor;

    const TINY: &str = "MARKOV
3
2 2 2
4
1 0
1 1
2 0 1
2 1 2
2
0.7 0.3
2
0.5 0.5
4
2.0 1.0 1.0 2.0
4
1.5 1.0 1.0 1.5
";

    #[test]
    fn parses_tiny_network() {
        let mrf = parse_uai(Cursor::new(TINY)).expect("parses");
        assert_eq!(mrf.graph.num_vertices(), 3);
        assert_eq!(mrf.graph.num_edges(), 2);
        assert_eq!(mrf.num_labels, 2);
        // Unary of variable 0: ln(0.7), ln(0.3); variable 2 has none → 0.
        assert!((mrf.unary[0][0] - 0.7f64.ln()).abs() < 1e-12);
        assert_eq!(mrf.unary[2], vec![0.0, 0.0]);
        // Potts bonus of factor (0,1): mean(ln 2) - mean(ln 1) = ln 2.
        let e01 = mrf
            .graph
            .edge_list()
            .iter()
            .position(|&(s, d)| (s, d) == (0, 1))
            .unwrap();
        assert!((mrf.pairwise[e01] - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn export_import_round_trip() {
        let original = mrf_graph(&MrfConfig::new(80, 5));
        let mut buf = Vec::new();
        write_uai(&mut buf, &original).unwrap();
        let back = parse_uai(Cursor::new(buf)).expect("re-parses");
        assert_eq!(back.graph.edge_list(), original.graph.edge_list());
        assert_eq!(back.num_labels, original.num_labels);
        for (a, b) in back.pairwise.iter().zip(original.pairwise.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        for (a, b) in back.unary.iter().zip(original.unary.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rejects_bayes_networks() {
        let err = parse_uai(Cursor::new("BAYES\n1\n2\n0\n")).unwrap_err();
        assert!(matches!(err, UaiError::Unsupported(_)));
    }

    #[test]
    fn rejects_high_arity() {
        let text = "MARKOV\n3\n2 2 2\n1\n3 0 1 2\n8\n1 1 1 1 1 1 1 1\n";
        let err = parse_uai(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, UaiError::Unsupported(_)), "{err}");
    }

    #[test]
    fn rejects_truncated_table() {
        let text = "MARKOV\n2\n2 2\n1\n1 0\n2\n0.5\n";
        let err = parse_uai(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, UaiError::Malformed(_)), "{err}");
    }

    #[test]
    fn rejects_mixed_cardinalities() {
        let text = "MARKOV\n2\n2 3\n0\n";
        let err = parse_uai(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, UaiError::Unsupported(_)));
    }

    #[test]
    fn dd_runs_on_parsed_uai() {
        // End-to-end: UAI → MrfGraph → DD solves it (smoke; the DD module
        // has its own correctness tests).
        let mrf = parse_uai(Cursor::new(TINY)).unwrap();
        // mrf has an isolated vertex? No: edges (0,1),(1,2) connect all 3.
        assert_eq!(mrf.unary.len(), 3);
    }
}
