//! Bipartite user–item rating graphs for Collaborative Filtering.
//!
//! Paper §3.2: "source vertices of edges are users, target vertices are items
//! to be recommended, and the weight of an edge represents the rating that a
//! user gives to an item … we assume the number of items is equal to the
//! number of users." Item popularity follows the configured power law
//! (blockbuster items collect most ratings); users are near-uniform raters.

use crate::gaussian::GaussianSampler;
use graphmine_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for a [`RatingGraph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BipartiteConfig {
    /// Target number of ratings (edges).
    pub nedges: usize,
    /// Power-law exponent of item popularity.
    pub alpha: f64,
    /// Ratings per user on average; derives the user count.
    pub mean_ratings_per_user: f64,
    /// Center of the rating scale.
    pub rating_mean: f64,
    /// Spread of ratings.
    pub rating_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BipartiteConfig {
    /// Standard CF configuration: 1–5-star-like ratings, 16 per user.
    pub fn new(nedges: usize, alpha: f64, seed: u64) -> BipartiteConfig {
        BipartiteConfig {
            nedges,
            alpha,
            mean_ratings_per_user: 16.0,
            rating_mean: 3.0,
            rating_std: 1.0,
            seed,
        }
    }

    /// Number of users (equals the number of items, per the paper).
    pub fn num_users(&self) -> usize {
        ((self.nedges as f64 / self.mean_ratings_per_user).round() as usize).max(2)
    }
}

/// A bipartite rating graph: vertices `0..num_users` are users, vertices
/// `num_users..2*num_users` are items; every edge runs user → item and
/// carries a rating.
#[derive(Debug, Clone)]
pub struct RatingGraph {
    /// The underlying undirected topology (GAS gathers run over all incident
    /// edges for both user and item vertices, as in GraphLab's ALS toolkit).
    pub graph: Graph,
    /// One rating per edge id.
    pub ratings: Vec<f64>,
    /// Number of user vertices; items are `num_users..2*num_users`.
    pub num_users: usize,
}

impl RatingGraph {
    /// Whether vertex `v` is a user.
    #[inline]
    pub fn is_user(&self, v: VertexId) -> bool {
        (v as usize) < self.num_users
    }

    /// Whether vertex `v` is an item.
    #[inline]
    pub fn is_item(&self, v: VertexId) -> bool {
        !self.is_user(v)
    }

    /// Generate a rating graph per `config`.
    pub fn generate(config: &BipartiteConfig) -> RatingGraph {
        let users = config.num_users();
        let items = users;
        let n = users + items;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        // Item popularity: Zipf weights with exponent derived from alpha,
        // same scheme as the Chung-Lu generator.
        let exponent = -1.0 / (config.alpha - 1.0);
        let mut cumulative = Vec::with_capacity(items);
        let mut acc = 0.0f64;
        for i in 0..items {
            acc += ((i + 1) as f64).powf(exponent);
            cumulative.push(acc);
        }
        let total = acc;
        let mut builder =
            GraphBuilder::undirected(n).with_edge_capacity(config.nedges + config.nedges / 16);
        // Redraw colliding (user, item) pairs until the target is met, as
        // in the power-law generator (popular items collide often).
        let mut seen = std::collections::HashSet::with_capacity(config.nedges * 2);
        let max_attempts = 6 * config.nedges + 64;
        let mut attempts = 0usize;
        while seen.len() < config.nedges && attempts < max_attempts {
            attempts += 1;
            let user = rng.gen_range(0..users) as VertexId;
            let x = rng.gen::<f64>() * total;
            let item = (users + cumulative.partition_point(|&c| c < x)) as VertexId;
            if seen.insert((user, item)) {
                builder.push_edge(user, item);
            }
        }
        let graph = builder.build();
        let mut g = GaussianSampler::new();
        let ratings = (0..graph.num_edges())
            .map(|_| {
                g.sample(&mut rng, config.rating_mean, config.rating_std)
                    .clamp(0.5, 5.5)
            })
            .collect();
        RatingGraph {
            graph,
            ratings,
            num_users: users,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_connect_users_to_items_only() {
        let rg = RatingGraph::generate(&BipartiteConfig::new(5_000, 2.5, 1));
        for &(s, d) in rg.graph.edge_list() {
            let user_side = rg.is_user(s) as usize + rg.is_user(d) as usize;
            assert_eq!(user_side, 1, "edge ({s},{d}) not user-item");
        }
    }

    #[test]
    fn users_equal_items() {
        let cfg = BipartiteConfig::new(8_000, 2.25, 2);
        let rg = RatingGraph::generate(&cfg);
        assert_eq!(rg.graph.num_vertices(), 2 * rg.num_users);
        assert_eq!(rg.num_users, cfg.num_users());
    }

    #[test]
    fn ratings_in_scale_and_one_per_edge() {
        let rg = RatingGraph::generate(&BipartiteConfig::new(3_000, 2.5, 3));
        assert_eq!(rg.ratings.len(), rg.graph.num_edges());
        assert!(rg.ratings.iter().all(|&r| (0.5..=5.5).contains(&r)));
    }

    #[test]
    fn popular_items_dominate_with_small_alpha() {
        let rg = RatingGraph::generate(&BipartiteConfig::new(20_000, 2.0, 4));
        let top_item_degree = (rg.num_users..2 * rg.num_users)
            .map(|v| rg.graph.degree(v as VertexId))
            .max()
            .unwrap();
        let mean_item_degree = rg.graph.num_edges() as f64 / rg.num_users as f64;
        assert!(
            top_item_degree as f64 > 8.0 * mean_item_degree,
            "top {top_item_degree} vs mean {mean_item_degree}"
        );
    }

    #[test]
    fn deterministic() {
        let a = RatingGraph::generate(&BipartiteConfig::new(1_000, 2.5, 9));
        let b = RatingGraph::generate(&BipartiteConfig::new(1_000, 2.5, 9));
        assert_eq!(a.graph.edge_list(), b.graph.edge_list());
        assert_eq!(a.ratings, b.ratings);
    }

    #[test]
    fn realized_edges_close_to_target() {
        let rg = RatingGraph::generate(&BipartiteConfig::new(10_000, 2.5, 5));
        let m = rg.graph.num_edges();
        assert!((9_000..=10_600).contains(&m), "m = {m}");
    }
}
