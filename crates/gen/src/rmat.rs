//! R-MAT (recursive-matrix) graph generation — the Kronecker-style family
//! behind the Graph500 benchmark the paper discusses in §6.
//!
//! The paper criticizes Graph 500 for using "only a single program, on a
//! single graph typically"; having its graph family available lets the
//! behavior-space methodology examine that single graph directly (e.g. via
//! `graphmine analyze` or custom ensembles mixing R-MAT with Chung–Lu
//! inputs).
//!
//! Each edge is placed by recursively descending a 2×2 partition of the
//! adjacency matrix with probabilities `(a, b, c, d)`; Graph500 uses
//! `a = 0.57, b = 0.19, c = 0.19, d = 0.05`, which yields a skewed,
//! community-rich scale-free graph.

use graphmine_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`rmat_graph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the vertex count (Graph500's SCALE).
    pub scale: u32,
    /// Target edge count (Graph500 uses `edgefactor × 2^scale`, with
    /// edgefactor 16).
    pub nedges: usize,
    /// Quadrant probabilities `(a, b, c, d)`; must sum to ≈ 1.
    pub probabilities: (f64, f64, f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500 reference parameters for the given scale:
    /// `nedges = 16 · 2^scale`, probabilities (0.57, 0.19, 0.19, 0.05).
    pub fn graph500(scale: u32, seed: u64) -> RmatConfig {
        RmatConfig {
            scale,
            nedges: 16usize << scale,
            probabilities: (0.57, 0.19, 0.19, 0.05),
            seed,
        }
    }

    /// Number of vertices (`2^scale`).
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }
}

/// Generate an undirected R-MAT graph.
///
/// Self-loops and duplicates are redrawn (bounded retries), as in the
/// Chung–Lu generator, so the realized edge count tracks the target except
/// for extreme densities.
pub fn rmat_graph(config: &RmatConfig) -> Graph {
    let (a, b, c, d) = config.probabilities;
    let total = a + b + c + d;
    assert!(
        (total - 1.0).abs() < 1e-6,
        "quadrant probabilities must sum to 1 (got {total})"
    );
    assert!(
        config.scale >= 1 && config.scale <= 30,
        "scale out of range"
    );
    let n = config.num_vertices();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut builder = GraphBuilder::undirected(n).with_edge_capacity(config.nedges);
    let mut seen = std::collections::HashSet::with_capacity(config.nedges * 2);
    let max_attempts = 6 * config.nedges + 64;
    let mut attempts = 0usize;
    while seen.len() < config.nedges && attempts < max_attempts {
        attempts += 1;
        let (mut lo_r, mut lo_c) = (0usize, 0usize);
        let mut half = n / 2;
        while half > 0 {
            let x: f64 = rng.gen();
            // Small per-level noise keeps the degree distribution from
            // being perfectly self-similar (standard Graph500 practice).
            let (qa, qb, qc) = (a, b, c);
            if x < qa {
                // top-left: nothing to add
            } else if x < qa + qb {
                lo_c += half;
            } else if x < qa + qb + qc {
                lo_r += half;
            } else {
                lo_r += half;
                lo_c += half;
            }
            half /= 2;
        }
        let (s, t) = (lo_r as VertexId, lo_c as VertexId);
        if s == t {
            continue;
        }
        let key = (s.min(t), s.max(t));
        if seen.insert(key) {
            builder.push_edge(s, t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_graph::DegreeStats;

    #[test]
    fn graph500_parameters() {
        let cfg = RmatConfig::graph500(10, 1);
        assert_eq!(cfg.num_vertices(), 1024);
        assert_eq!(cfg.nedges, 16 * 1024);
        let g = rmat_graph(&cfg);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() >= cfg.nedges * 9 / 10);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn skewed_degree_distribution() {
        let g = rmat_graph(&RmatConfig::graph500(11, 2));
        let stats = DegreeStats::of(&g);
        // R-MAT at Graph500 parameters is strongly skewed: the max degree
        // dwarfs the mean.
        assert!(
            stats.max as f64 > 8.0 * stats.mean,
            "max {} mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat_graph(&RmatConfig::graph500(8, 7));
        let b = rmat_graph(&RmatConfig::graph500(8, 7));
        let c = rmat_graph(&RmatConfig::graph500(8, 8));
        assert_eq!(a.edge_list(), b.edge_list());
        assert_ne!(a.edge_list(), c.edge_list());
    }

    #[test]
    fn uniform_probabilities_give_erdos_renyi_like_graph() {
        let cfg = RmatConfig {
            scale: 10,
            nedges: 8_192,
            probabilities: (0.25, 0.25, 0.25, 0.25),
            seed: 3,
        };
        let g = rmat_graph(&cfg);
        let stats = DegreeStats::of(&g);
        // Near-uniform edge placement: max degree stays close to the mean.
        assert!(
            (stats.max as f64) < 4.0 * stats.mean,
            "max {} mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probabilities_rejected() {
        let cfg = RmatConfig {
            scale: 4,
            nedges: 10,
            probabilities: (0.9, 0.2, 0.2, 0.2),
            seed: 0,
        };
        let _ = rmat_graph(&cfg);
    }
}
