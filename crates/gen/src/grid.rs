//! Square pixel grids for Loopy Belief Propagation.
//!
//! Paper §3.2: "Inputs of LBP include a pixel matrix and vertex data, which
//! are prior estimates for each pixel color. … we only generate square
//! matrices." The grid is the classic 4-connected image MRF; priors are a
//! noisy two-region image so LBP has actual smoothing work to do and
//! converges region-by-region (producing the sharp active-fraction drop of
//! paper Figure 11).

use crate::gaussian::GaussianSampler;
use graphmine_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Build a `side × side` 4-connected undirected grid graph. Vertex `(r, c)`
/// has id `r * side + c`.
pub fn grid_graph(side: usize) -> Graph {
    assert!(side >= 2, "grid side must be >= 2");
    let n = side * side;
    let mut b = GraphBuilder::undirected(n).with_edge_capacity(2 * side * (side - 1));
    for r in 0..side {
        for c in 0..side {
            let v = (r * side + c) as VertexId;
            if c + 1 < side {
                b.push_edge(v, v + 1);
            }
            if r + 1 < side {
                b.push_edge(v, v + side as VertexId);
            }
        }
    }
    b.build()
}

/// A grid MRF instance for LBP: topology plus per-pixel label priors.
#[derive(Debug, Clone)]
pub struct GridMrf {
    /// 4-connected grid topology.
    pub graph: Graph,
    /// Grid side length.
    pub side: usize,
    /// Number of labels (colors).
    pub num_labels: usize,
    /// Per-vertex prior log-potentials, `num_labels` each.
    pub priors: Vec<Vec<f64>>,
    /// Smoothness strength of the pairwise Potts potential.
    pub smoothing: f64,
}

impl GridMrf {
    /// Generate a noisy two-region image MRF: the left half prefers label 0,
    /// the right half prefers label `num_labels - 1`, with Gaussian noise on
    /// every prior so boundary pixels are genuinely ambiguous.
    pub fn generate(side: usize, num_labels: usize, seed: u64) -> GridMrf {
        assert!(num_labels >= 2, "need at least two labels");
        let graph = grid_graph(side);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gauss = GaussianSampler::new();
        let mut priors = Vec::with_capacity(side * side);
        for r in 0..side {
            for c in 0..side {
                let preferred = if c < side / 2 { 0 } else { num_labels - 1 };
                let mut p: Vec<f64> = (0..num_labels)
                    .map(|l| {
                        let signal = if l == preferred { 2.0 } else { 0.0 };
                        signal + 0.5 * gauss.standard(&mut rng)
                    })
                    .collect();
                // Normalize to log-probabilities-like scale (max 0).
                let max = p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                for x in &mut p {
                    *x -= max;
                }
                let _ = r;
                priors.push(p);
            }
        }
        GridMrf {
            graph,
            side,
            num_labels,
            priors,
            smoothing: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_graph::is_connected;

    #[test]
    fn grid_edge_count() {
        // side*side vertices, 2*side*(side-1) edges.
        for side in [2usize, 3, 5, 8] {
            let g = grid_graph(side);
            assert_eq!(g.num_vertices(), side * side);
            assert_eq!(g.num_edges(), 2 * side * (side - 1));
        }
    }

    #[test]
    fn grid_is_connected() {
        assert!(is_connected(&grid_graph(6)));
    }

    #[test]
    fn corner_edge_interior_degrees() {
        let g = grid_graph(4);
        // Corners have degree 2, edges 3, interior 4.
        assert_eq!(g.degree(0), 2); // top-left corner
        assert_eq!(g.degree(1), 3); // top edge
        assert_eq!(g.degree(5), 4); // interior (1,1)
    }

    #[test]
    fn mrf_priors_shape() {
        let mrf = GridMrf::generate(6, 3, 1);
        assert_eq!(mrf.priors.len(), 36);
        assert!(mrf.priors.iter().all(|p| p.len() == 3));
        // Normalized: every prior has max exactly 0.
        for p in &mrf.priors {
            let max = p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!((max - 0.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mrf_left_prefers_zero_right_prefers_last() {
        let mrf = GridMrf::generate(16, 2, 2);
        let side = mrf.side;
        let mut left_zero = 0usize;
        let mut right_one = 0usize;
        for r in 0..side {
            for c in 0..side {
                let p = &mrf.priors[r * side + c];
                let best = p
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                if c < side / 2 && best == 0 {
                    left_zero += 1;
                }
                if c >= side / 2 && best == 1 {
                    right_one += 1;
                }
            }
        }
        let half = side * side / 2;
        assert!(left_zero > half * 8 / 10, "{left_zero}/{half}");
        assert!(right_one > half * 8 / 10, "{right_one}/{half}");
    }

    #[test]
    fn deterministic() {
        let a = GridMrf::generate(5, 3, 9);
        let b = GridMrf::generate(5, 3, 9);
        assert_eq!(a.priors, b.priors);
    }

    #[test]
    #[should_panic(expected = "side must be >= 2")]
    fn degenerate_grid_rejected() {
        let _ = grid_graph(1);
    }
}
