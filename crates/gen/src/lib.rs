//! Synthetic graph generators for the `graphmine` behavior study.
//!
//! The paper evaluates every algorithm on *synthetic* graphs so that graph
//! features can be varied one at a time (§3.2): the number of edges
//! (`nedges`, orders of magnitude apart) and the power-law exponent α of the
//! degree distribution (2.0–3.0, matching real-world scale-free networks),
//! with vertex data and edge weights drawn from Gaussian distributions.
//!
//! One generator per application domain:
//!
//! * [`powerlaw`] — scale-free graphs for Graph Analytics and Clustering
//!   (Chung–Lu sampling with Zipf weights).
//! * [`bipartite`] — user–item rating graphs for Collaborative Filtering
//!   (`#items = #users`, power-law item popularity).
//! * [`matrix`] — uniform-degree, diagonally dominant sparse matrices for the
//!   Jacobi linear solver.
//! * [`grid`] — square pixel grids for Loopy Belief Propagation.
//! * [`mrf`] — synthetic pairwise Markov Random Fields with exact edge counts
//!   for Dual Decomposition (substitute for the PIC2011 downloads; see
//!   DESIGN.md substitution #3).
//!
//! All generators take an explicit seed and are fully deterministic.

pub mod bipartite;
pub mod gaussian;
pub mod grid;
pub mod matrix;
pub mod mrf;
pub mod powerlaw;
pub mod rmat;
pub mod uai;

pub use bipartite::{BipartiteConfig, RatingGraph};
pub use gaussian::GaussianSampler;
pub use grid::{grid_graph, GridMrf};
pub use matrix::{matrix_graph, MatrixSystem};
pub use mrf::mrf_energy;
pub use mrf::{mrf_graph, MrfConfig, MrfGraph};
pub use powerlaw::{gaussian_edge_weights, gaussian_points, powerlaw_graph, PowerLawConfig};
pub use rmat::{rmat_graph, RmatConfig};
pub use uai::{parse_uai, write_uai, UaiError};

/// The α values used throughout the paper's experiment matrix (Table 2).
pub const PAPER_ALPHAS: [f64; 5] = [2.0, 2.25, 2.5, 2.75, 3.0];
