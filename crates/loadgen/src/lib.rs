//! `graphmine-loadgen` — open/closed-loop load generation and a
//! latency-SLO harness for `graphmine-service`.
//!
//! The paper's thesis is that robust benchmarking needs measurement
//! methodology as much as workloads; this crate applies that to the
//! service itself. It drives a live server over real HTTP and answers
//! the operational questions a single-job benchmark cannot:
//!
//! * **What latency does a client see under load?** Open-loop runs fire
//!   requests on a precomputed, seeded arrival schedule (Poisson or
//!   uniform) and measure every latency from the *intended* send time —
//!   the coordinated-omission correction — so server stalls inflate the
//!   reported tail instead of silently thinning the offered load.
//!   Closed-loop runs model a fixed client population with think time.
//! * **Under what workload?** A weighted [`mix::JobMix`] spans the
//!   14-algorithm suite crossed with cache temperature (hot classes pin
//!   a seed and hit the workload cache; cold classes draw fresh seeds).
//! * **Where does the time go?** The service's `/metrics` exports
//!   per-stage log-bucketed histograms (queue wait, cache load, execute,
//!   serialize); the report differences snapshots taken before and after
//!   the run for window-exact stage percentiles.
//! * **What can it sustain?** [`slo::find_max_sustainable`] binary-searches
//!   the arrival rate for the highest load whose corrected p99 stays
//!   inside the objective.
//!
//! Everything is deterministic given a seed: the arrival schedule, the
//! job mix draws, and the SLO search's probe seeds. Reports carry the
//! seed so any run can be regenerated exactly.

pub mod mix;
pub mod report;
pub mod rng;
pub mod run;
pub mod schedule;
pub mod slo;

pub use mix::{JobClass, JobMix, HOT_SEED, SUITE_ALGORITHMS};
pub use report::{sweep_table, ClassReport, Counts, LoadReport, TenantReport, STAGE_NAMES};
pub use rng::SplitMix64;
pub use run::{run, Mode, Outcome, RunConfig, RunResult, Sample, TenantLoad};
pub use schedule::{build_schedule, ArrivalProcess, ScheduledRequest};
pub use slo::{find_max_sustainable, Probe, SloConfig, SloResult};
