//! Weighted job-mix specification.
//!
//! A load test is only as meaningful as its workload: a PageRank-only
//! stream exercises the cache and the engine very differently from the
//! paper's full 14-algorithm behavior suite. A [`JobMix`] is a weighted
//! set of [`JobClass`]es — algorithm × graph configuration ×
//! cache-temperature — sampled per request.
//!
//! Cache temperature is expressed through the seed: the service keys its
//! workload cache on (algorithm, size, alpha, seed, reorder), so a *hot*
//! class reuses one fixed seed (every request after the first is a cache
//! hit) while a *cold* class draws a fresh seed per request (every
//! request pays workload generation).

use crate::rng::SplitMix64;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// One weighted entry of the mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobClass {
    /// Display name, e.g. `"PR-hot"`. Must be unique within a mix.
    pub name: String,
    /// Algorithm abbreviation as the service accepts it (`"PR"`, `"CC"`, …).
    pub algorithm: String,
    /// Graph size (vertex count scale) for the generated workload.
    pub size: u64,
    /// Optional skew parameter forwarded to the generator.
    pub alpha: Option<f64>,
    /// Named graph from the server's store catalog. When set, the service
    /// runs on the stored graph (mmap-opened, cached by fingerprint) and
    /// ignores `size`, `alpha`, and the per-request seed — every request
    /// of the class behaves as hot after the first touch.
    #[serde(default)]
    pub graph: Option<String>,
    /// Adjacency representation forwarded to the service ("plain" |
    /// "compressed"). `None` leaves the server default. Part of the
    /// service's cache key, so a compressed class warms its own slot.
    #[serde(default)]
    pub representation: Option<String>,
    /// Scale profile forwarded to the service (`"quick"` keeps probe jobs
    /// short).
    pub profile: Option<String>,
    /// Hot classes pin one seed (cache hits); cold classes draw a fresh
    /// seed per request (cache misses).
    pub hot: bool,
    /// Relative sampling weight (> 0).
    pub weight: f64,
}

/// A weighted job mix with a deterministic sampler.
#[derive(Debug, Clone)]
pub struct JobMix {
    classes: Vec<JobClass>,
    /// Cumulative weights, normalized to end exactly at 1.0.
    cumulative: Vec<f64>,
}

/// The 14 algorithm abbreviations of the behavior suite.
pub const SUITE_ALGORITHMS: [&str; 14] = [
    "CC", "KC", "TC", "SSSP", "PR", "AD", "KM", "ALS", "NMF", "SGD", "SVD", "Jacobi", "LBP", "DD",
];

/// Seed pinned by every hot class: requests in a hot class share it, so
/// after the first request the workload is cache-resident.
pub const HOT_SEED: u64 = 1;

impl JobMix {
    /// A mix from explicit classes. Fails on an empty list, a non-positive
    /// weight, or a duplicate class name.
    pub fn new(classes: Vec<JobClass>) -> Result<JobMix, String> {
        if classes.is_empty() {
            return Err("job mix needs at least one class".to_string());
        }
        let mut total = 0.0;
        for c in &classes {
            if c.weight.is_nan() || c.weight <= 0.0 {
                return Err(format!("class {} has non-positive weight", c.name));
            }
            if classes.iter().filter(|o| o.name == c.name).count() > 1 {
                return Err(format!("duplicate class name {}", c.name));
            }
            total += c.weight;
        }
        let mut acc = 0.0;
        let mut cumulative: Vec<f64> = classes
            .iter()
            .map(|c| {
                acc += c.weight / total;
                acc
            })
            .collect();
        // Pin the last boundary so a draw of 0.999… can never fall off the
        // end of the table.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Ok(JobMix {
            classes,
            cumulative,
        })
    }

    /// The default mix: every suite algorithm at `size`, split into a hot
    /// and a cold class with `hot_ratio` of the weight on the hot one
    /// (clamped to `[0, 1]`). A ratio of 1.0 or 0.0 drops the other class
    /// entirely.
    pub fn suite(size: u64, hot_ratio: f64) -> JobMix {
        let hot_ratio = hot_ratio.clamp(0.0, 1.0);
        let mut classes = Vec::new();
        for algo in SUITE_ALGORITHMS {
            if hot_ratio > 0.0 {
                classes.push(JobClass {
                    name: format!("{algo}-hot"),
                    algorithm: algo.to_string(),
                    size,
                    alpha: None,
                    graph: None,
                    representation: None,
                    profile: Some("quick".to_string()),
                    hot: true,
                    weight: hot_ratio,
                });
            }
            if hot_ratio < 1.0 {
                classes.push(JobClass {
                    name: format!("{algo}-cold"),
                    algorithm: algo.to_string(),
                    size,
                    alpha: None,
                    graph: None,
                    representation: None,
                    profile: Some("quick".to_string()),
                    hot: false,
                    weight: 1.0 - hot_ratio,
                });
            }
        }
        JobMix::new(classes).expect("suite mix is well-formed")
    }

    /// A single-class mix — useful for focused probes and tests.
    pub fn single(algorithm: &str, size: u64, hot: bool) -> JobMix {
        JobMix::new(vec![JobClass {
            name: format!("{algorithm}-{}", if hot { "hot" } else { "cold" }),
            algorithm: algorithm.to_string(),
            size,
            alpha: None,
            graph: None,
            representation: None,
            profile: Some("quick".to_string()),
            hot,
            weight: 1.0,
        }])
        .expect("single-class mix is well-formed")
    }

    /// The same mix retargeted at a stored graph: every class keeps its
    /// algorithm and weight but runs against `graph` from the server's
    /// catalog instead of a generated workload.
    pub fn with_graph(mut self, graph: &str) -> JobMix {
        for c in &mut self.classes {
            c.graph = Some(graph.to_string());
        }
        self
    }

    /// The same mix with every class requesting `representation`
    /// ("plain" | "compressed") from the service.
    pub fn with_representation(mut self, representation: &str) -> JobMix {
        for c in &mut self.classes {
            c.representation = Some(representation.to_string());
        }
        self
    }

    /// The classes, in declaration order (stable class indices).
    pub fn classes(&self) -> &[JobClass] {
        &self.classes
    }

    /// Draw a class index from the weighted distribution.
    pub fn sample_class(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cumulative
            .iter()
            .position(|&edge| u < edge)
            .unwrap_or(self.classes.len() - 1)
    }

    /// Build the `POST /jobs` body for one request of class `class`. Hot
    /// classes pin [`HOT_SEED`]; cold classes derive a fresh seed from
    /// `rng` (kept odd-ranged away from `HOT_SEED`).
    pub fn request_body(&self, class: usize, rng: &mut SplitMix64) -> Value {
        let c = &self.classes[class];
        let seed = if c.hot {
            HOT_SEED
        } else {
            // Disjoint from HOT_SEED so a "cold" draw can never collide
            // with the hot cache entry.
            0x1_0000 + (rng.next_u64() >> 16)
        };
        let mut body = json!({
            "algorithm": c.algorithm,
            "size": c.size,
            "seed": seed,
        });
        if let Some(alpha) = c.alpha {
            body["alpha"] = json!(alpha);
        }
        if let Some(graph) = &c.graph {
            body["graph"] = json!(graph);
        }
        if let Some(profile) = &c.profile {
            body["profile"] = json!(profile);
        }
        if let Some(representation) = &c.representation {
            body["representation"] = json!(representation);
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_mix_covers_all_algorithms_hot_and_cold() {
        let mix = JobMix::suite(500, 0.5);
        assert_eq!(mix.classes().len(), 28);
        for algo in SUITE_ALGORITHMS {
            assert!(mix
                .classes()
                .iter()
                .any(|c| c.name == format!("{algo}-hot")));
            assert!(mix
                .classes()
                .iter()
                .any(|c| c.name == format!("{algo}-cold")));
        }
    }

    #[test]
    fn extreme_hot_ratios_drop_the_other_class() {
        assert_eq!(JobMix::suite(100, 1.0).classes().len(), 14);
        assert_eq!(JobMix::suite(100, 0.0).classes().len(), 14);
        assert!(JobMix::suite(100, 1.0).classes().iter().all(|c| c.hot));
    }

    #[test]
    fn sampling_is_deterministic_and_weight_proportional() {
        let mix = JobMix::new(vec![
            JobClass {
                name: "a".into(),
                algorithm: "PR".into(),
                size: 100,
                alpha: None,
                graph: None,
                representation: None,
                profile: None,
                hot: true,
                weight: 3.0,
            },
            JobClass {
                name: "b".into(),
                algorithm: "CC".into(),
                size: 100,
                alpha: None,
                graph: None,
                representation: None,
                profile: None,
                hot: false,
                weight: 1.0,
            },
        ])
        .unwrap();
        let draw = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            (0..4000)
                .map(|_| mix.sample_class(&mut rng))
                .collect::<Vec<_>>()
        };
        let first = draw(11);
        assert_eq!(first, draw(11), "same seed must give the same draws");
        let a = first.iter().filter(|&&c| c == 0).count() as f64;
        let frac = a / first.len() as f64;
        assert!((frac - 0.75).abs() < 0.03, "class-a fraction {frac}");
    }

    #[test]
    fn hot_bodies_share_a_seed_and_cold_bodies_do_not() {
        let mix = JobMix::suite(300, 0.5);
        let hot = mix
            .classes()
            .iter()
            .position(|c| c.hot)
            .expect("has a hot class");
        let cold = mix
            .classes()
            .iter()
            .position(|c| !c.hot)
            .expect("has a cold class");
        let mut rng = SplitMix64::new(5);
        let h1 = mix.request_body(hot, &mut rng);
        let h2 = mix.request_body(hot, &mut rng);
        assert_eq!(h1["seed"], h2["seed"]);
        assert_eq!(h1["seed"], HOT_SEED);
        let c1 = mix.request_body(cold, &mut rng);
        let c2 = mix.request_body(cold, &mut rng);
        assert_ne!(c1["seed"], c2["seed"]);
        assert_ne!(c1["seed"], json!(HOT_SEED));
    }

    #[test]
    fn with_graph_retargets_every_class_and_body() {
        let mix = JobMix::suite(300, 0.5).with_graph("twitter");
        assert!(mix
            .classes()
            .iter()
            .all(|c| c.graph.as_deref() == Some("twitter")));
        let mut rng = SplitMix64::new(9);
        let body = mix.request_body(0, &mut rng);
        assert_eq!(body["graph"], json!("twitter"));
        let plain = JobMix::single("PR", 100, true);
        let mut rng = SplitMix64::new(9);
        assert!(plain.request_body(0, &mut rng).get("graph").is_none());
    }

    #[test]
    fn with_representation_marks_every_class_and_body() {
        let mix = JobMix::suite(300, 0.5).with_representation("compressed");
        assert!(mix
            .classes()
            .iter()
            .all(|c| c.representation.as_deref() == Some("compressed")));
        let mut rng = SplitMix64::new(9);
        let body = mix.request_body(0, &mut rng);
        assert_eq!(body["representation"], json!("compressed"));
        let plain = JobMix::single("PR", 100, true);
        let mut rng = SplitMix64::new(9);
        assert!(plain
            .request_body(0, &mut rng)
            .get("representation")
            .is_none());
    }

    #[test]
    fn bad_mixes_are_rejected() {
        assert!(JobMix::new(vec![]).is_err());
        let class = |name: &str, weight: f64| JobClass {
            name: name.into(),
            algorithm: "PR".into(),
            size: 10,
            alpha: None,
            graph: None,
            representation: None,
            profile: None,
            hot: true,
            weight,
        };
        assert!(JobMix::new(vec![class("a", 0.0)]).is_err());
        assert!(JobMix::new(vec![class("a", 1.0), class("a", 2.0)]).is_err());
    }
}
