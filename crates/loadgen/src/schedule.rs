//! Deterministic open-loop arrival schedules.
//!
//! An open-loop generator fires requests at *scheduled* times regardless
//! of how the system responds — the arrival process is part of the
//! experiment definition, so it is computed fully in advance from the
//! seed. That precomputation is also what makes coordinated-omission
//! correction possible: the intended send time of every request exists
//! before the run starts, so a stall in the generator (or in the server)
//! cannot silently shift the schedule the way a measure-after-send loop
//! would.

use crate::mix::JobMix;
use crate::rng::{exp_interval_s, SplitMix64};
use serde_json::Value;
use std::time::Duration;

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential inter-arrivals (memoryless, bursty) — the standard
    /// model for independent clients.
    Poisson,
    /// Fixed `1/rate` spacing — a perfectly paced stream, the most
    /// forgiving arrival process a server can face.
    Uniform,
}

impl ArrivalProcess {
    /// Parse `"poisson"` / `"uniform"` (case-insensitive).
    pub fn parse(s: &str) -> Result<ArrivalProcess, String> {
        match s.to_ascii_lowercase().as_str() {
            "poisson" => Ok(ArrivalProcess::Poisson),
            "uniform" => Ok(ArrivalProcess::Uniform),
            other => Err(format!(
                "unknown arrival process {other:?} (poisson|uniform)"
            )),
        }
    }

    /// Lowercase wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Uniform => "uniform",
        }
    }
}

/// One scheduled request: when to send it, what to send.
#[derive(Debug, Clone)]
pub struct ScheduledRequest {
    /// Intended send time as an offset from the run start. Latency is
    /// measured from here (coordinated-omission correction).
    pub intended: Duration,
    /// Index into the mix's class table.
    pub class: usize,
    /// The `POST /jobs` body.
    pub body: Value,
}

/// Build the full arrival schedule for an open-loop run: every request's
/// intended send offset, class, and body, determined entirely by
/// (`process`, `rate_per_s`, `duration`, `seed`, `mix`). Two calls with
/// equal inputs return identical schedules.
pub fn build_schedule(
    process: ArrivalProcess,
    rate_per_s: f64,
    duration: Duration,
    seed: u64,
    mix: &JobMix,
) -> Vec<ScheduledRequest> {
    assert!(rate_per_s > 0.0, "arrival rate must be positive");
    // Independent streams for arrival times and job bodies: changing the
    // mix never perturbs the arrival process, and vice versa.
    let mut root = SplitMix64::new(seed);
    let mut arrivals = root.split();
    let mut jobs = root.split();

    let horizon = duration.as_secs_f64();
    let mut schedule = Vec::new();
    let mut t = 0.0f64;
    loop {
        let gap = match process {
            ArrivalProcess::Poisson => exp_interval_s(&mut arrivals, rate_per_s),
            ArrivalProcess::Uniform => 1.0 / rate_per_s,
        };
        t += gap;
        if t >= horizon {
            break;
        }
        let class = mix.sample_class(&mut jobs);
        let body = mix.request_body(class, &mut jobs);
        schedule.push(ScheduledRequest {
            intended: Duration::from_secs_f64(t),
            class,
            body,
        });
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> JobMix {
        JobMix::suite(300, 0.5)
    }

    #[test]
    fn same_seed_gives_an_identical_schedule() {
        let m = mix();
        let a = build_schedule(
            ArrivalProcess::Poisson,
            200.0,
            Duration::from_secs(2),
            77,
            &m,
        );
        let b = build_schedule(
            ArrivalProcess::Poisson,
            200.0,
            Duration::from_secs(2),
            77,
            &m,
        );
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.intended, y.intended);
            assert_eq!(x.class, y.class);
            assert_eq!(x.body, y.body);
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let m = mix();
        let a = build_schedule(
            ArrivalProcess::Poisson,
            200.0,
            Duration::from_secs(2),
            1,
            &m,
        );
        let b = build_schedule(
            ArrivalProcess::Poisson,
            200.0,
            Duration::from_secs(2),
            2,
            &m,
        );
        assert_ne!(
            a.iter().map(|r| r.intended).collect::<Vec<_>>(),
            b.iter().map(|r| r.intended).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_schedule_is_evenly_spaced_and_counted() {
        let m = mix();
        let s = build_schedule(
            ArrivalProcess::Uniform,
            100.0,
            Duration::from_secs(1),
            9,
            &m,
        );
        // Arrivals at 10ms, 20ms, …, 990ms: the t=1000ms arrival hits the
        // horizon exactly and is excluded.
        assert_eq!(s.len(), 99);
        for (i, r) in s.iter().enumerate() {
            let expected = (i + 1) as f64 * 0.01;
            assert!((r.intended.as_secs_f64() - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn poisson_schedule_is_monotone_and_rate_is_roughly_right() {
        let m = mix();
        let rate = 500.0;
        let s = build_schedule(
            ArrivalProcess::Poisson,
            rate,
            Duration::from_secs(4),
            123,
            &m,
        );
        for pair in s.windows(2) {
            assert!(pair[0].intended < pair[1].intended);
        }
        let expected = rate * 4.0;
        let n = s.len() as f64;
        assert!(
            (n - expected).abs() < expected * 0.1,
            "got {n} arrivals, expected ≈{expected}"
        );
    }

    #[test]
    fn mix_change_does_not_perturb_arrival_times() {
        let a = build_schedule(
            ArrivalProcess::Poisson,
            100.0,
            Duration::from_secs(2),
            42,
            &JobMix::suite(300, 1.0),
        );
        let b = build_schedule(
            ArrivalProcess::Poisson,
            100.0,
            Duration::from_secs(2),
            42,
            &JobMix::single("PR", 50, false),
        );
        assert_eq!(
            a.iter().map(|r| r.intended).collect::<Vec<_>>(),
            b.iter().map(|r| r.intended).collect::<Vec<_>>()
        );
    }
}
