//! Aggregation of a [`RunResult`](crate::run::RunResult) into a
//! machine-readable report: outcome counts, coordinated-omission-corrected
//! latency percentiles overall and per job class, and the service-side
//! per-stage percentiles for exactly the run window (computed by
//! differencing the `/metrics` histogram snapshots taken before and
//! after the run).

use crate::run::{Mode, Outcome, RunConfig, RunResult};
use graphmine_core::LogHistogram;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Outcome tallies for one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counts {
    /// Requests the generator attempted.
    pub submitted: u64,
    /// Jobs that reached `done`.
    pub done: u64,
    /// Jobs that turned terminal any other way (or timed out waiting).
    pub failed: u64,
    /// Requests shed by admission control after the retry budget.
    pub shed: u64,
    /// Transport-level failures.
    pub transport_errors: u64,
    /// Total 429 responses absorbed (including retried ones).
    pub http_429: u64,
}

/// Latency summary for one job class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassReport {
    pub name: String,
    /// Percentile summary in microseconds (keys from
    /// `LogHistogram::summary_json`).
    pub latency: Value,
}

/// Outcome counts and corrected-latency summary for one tenant of a
/// multi-tenant run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant id (as the server stamps it).
    pub id: String,
    /// Traffic share this tenant was offered.
    pub share: u32,
    pub counts: Counts,
    /// Corrected latency summary over this tenant's `done` jobs, µs.
    pub latency: Value,
}

impl TenantReport {
    /// Corrected p99 in milliseconds for this tenant (0 when no job
    /// completed) — the per-tenant isolation criterion.
    pub fn p99_ms(&self) -> f64 {
        self.latency
            .get("p99_us")
            .and_then(Value::as_u64)
            .unwrap_or(0) as f64
            / 1000.0
    }
}

/// The full report of one load run. Serializes to the machine-readable
/// JSON the harness emits; [`LoadReport::text_table`] renders the human
/// view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// `"open"` or `"closed"`.
    pub mode: String,
    /// Arrival process for open-loop runs.
    pub process: Option<String>,
    /// Client count / think time for closed-loop runs.
    pub clients: Option<usize>,
    pub think_ms: Option<u64>,
    /// The master seed — sufficient to regenerate the exact request
    /// stream.
    pub seed: u64,
    pub duration_s: f64,
    pub elapsed_s: f64,
    pub offered_rate_per_s: Option<f64>,
    pub achieved_rate_per_s: f64,
    pub counts: Counts,
    /// Corrected latency summary over completed (`done`) jobs, µs.
    pub latency: Value,
    /// The full corrected-latency histogram, serialized for downstream
    /// merging across runs.
    pub latency_histogram: LogHistogram,
    /// Per-class corrected latency summaries.
    pub per_class: Vec<ClassReport>,
    /// Per-tenant outcome counts and corrected latency summaries; empty
    /// for single-tenant runs.
    #[serde(default)]
    pub per_tenant: Vec<TenantReport>,
    /// Requests whose server-side tenant stamp disagreed with the key
    /// that submitted them. Any nonzero value is cross-tenant leakage.
    #[serde(default)]
    pub tenant_mismatches: u64,
    /// Service-side per-stage summaries for the run window (snapshot
    /// difference), µs per stage.
    pub service_stages: Value,
}

/// Pipeline stages exported by the service's `/metrics`.
pub const STAGE_NAMES: [&str; 5] = ["queue_wait", "cache_load", "execute", "serialize", "total"];

impl LoadReport {
    /// Aggregate `result` (produced by [`crate::run::run`] with `cfg`).
    pub fn build(cfg: &RunConfig, result: &RunResult) -> LoadReport {
        let classes = cfg.mix.classes();
        let mut overall = LogHistogram::new();
        let mut per_class: Vec<LogHistogram> =
            (0..classes.len()).map(|_| LogHistogram::new()).collect();
        for s in &result.samples {
            if s.outcome == Outcome::Done {
                overall.record(s.latency_us);
                if let Some(h) = per_class.get_mut(s.class) {
                    h.record(s.latency_us);
                }
            }
        }
        let (process, clients, think_ms, offered) = match &cfg.mode {
            Mode::Open {
                rate_per_s,
                process,
            } => (
                Some(process.as_str().to_string()),
                None,
                None,
                Some(*rate_per_s),
            ),
            Mode::Closed { clients, think } => {
                (None, Some(*clients), Some(think.as_millis() as u64), None)
            }
        };
        LoadReport {
            mode: cfg.mode.as_str().to_string(),
            process,
            clients,
            think_ms,
            seed: cfg.seed,
            duration_s: cfg.duration.as_secs_f64(),
            elapsed_s: result.elapsed.as_secs_f64(),
            offered_rate_per_s: offered,
            achieved_rate_per_s: result.achieved_rate(),
            counts: Counts {
                submitted: result.samples.len() as u64,
                done: result.count(Outcome::Done) as u64,
                failed: result.count(Outcome::Failed) as u64,
                shed: result.count(Outcome::Shed) as u64,
                transport_errors: result.count(Outcome::TransportError) as u64,
                http_429: result.http_429_total(),
            },
            latency: overall.summary_json("us"),
            per_class: classes
                .iter()
                .zip(&per_class)
                .filter(|(_, h)| !h.is_empty())
                .map(|(c, h)| ClassReport {
                    name: c.name.clone(),
                    latency: h.summary_json("us"),
                })
                .collect(),
            per_tenant: per_tenant_reports(cfg, result),
            tenant_mismatches: result.tenant_mismatches(),
            latency_histogram: overall,
            service_stages: stage_window(&result.metrics_before, &result.metrics_after),
        }
    }

    /// Corrected p99 in milliseconds (the SLO search criterion). 0 when no
    /// job completed.
    pub fn p99_ms(&self) -> f64 {
        self.latency_histogram.value_at_quantile(0.99) as f64 / 1000.0
    }

    /// Machine-readable JSON.
    pub fn to_json(&self) -> Value {
        serde_json::to_value(self).expect("report serializes")
    }

    /// Human-readable rendering.
    pub fn text_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "mode={} {}seed={} duration={:.1}s elapsed={:.1}s\n",
            self.mode,
            match (&self.process, self.clients) {
                (Some(p), _) => format!("process={p} "),
                (None, Some(c)) => format!("clients={c} think={}ms ", self.think_ms.unwrap_or(0)),
                _ => String::new(),
            },
            self.seed,
            self.duration_s,
            self.elapsed_s,
        ));
        if let Some(r) = self.offered_rate_per_s {
            out.push_str(&format!("offered={r:.1}/s "));
        }
        out.push_str(&format!("achieved={:.1}/s\n", self.achieved_rate_per_s));
        let c = &self.counts;
        out.push_str(&format!(
            "outcomes: submitted={} done={} failed={} shed={} transport={} (429s absorbed: {})\n",
            c.submitted, c.done, c.failed, c.shed, c.transport_errors, c.http_429,
        ));
        out.push_str(&format!(
            "latency us (CO-corrected): {}\n",
            summary_line(&self.latency)
        ));
        if !self.per_class.is_empty() {
            out.push_str(&format!(
                "{:<14} {:>7} {:>9} {:>9} {:>9} {:>9}\n",
                "class", "count", "p50_us", "p90_us", "p99_us", "p999_us"
            ));
            for class in &self.per_class {
                let s = &class.latency;
                out.push_str(&format!(
                    "{:<14} {:>7} {:>9} {:>9} {:>9} {:>9}\n",
                    class.name, s["count"], s["p50_us"], s["p90_us"], s["p99_us"], s["p999_us"],
                ));
            }
        }
        if !self.per_tenant.is_empty() {
            out.push_str(&format!(
                "{:<14} {:>5} {:>7} {:>7} {:>6} {:>9} {:>9}\n",
                "tenant", "share", "subm", "done", "shed", "p50_us", "p99_us"
            ));
            for t in &self.per_tenant {
                out.push_str(&format!(
                    "{:<14} {:>5} {:>7} {:>7} {:>6} {:>9} {:>9}\n",
                    t.id,
                    t.share,
                    t.counts.submitted,
                    t.counts.done,
                    t.counts.shed,
                    t.latency["p50_us"],
                    t.latency["p99_us"],
                ));
            }
            out.push_str(&format!(
                "tenant stamp mismatches: {}\n",
                self.tenant_mismatches
            ));
        }
        out.push_str("service stages us (run window):\n");
        for stage in STAGE_NAMES {
            if let Some(s) = self.service_stages.get(stage) {
                out.push_str(&format!("  {:<11} {}\n", stage, summary_line(s)));
            }
        }
        out
    }
}

fn summary_line(s: &Value) -> String {
    format!(
        "count={} p50={} p90={} p99={} p999={} max={}",
        s["count"], s["p50_us"], s["p90_us"], s["p99_us"], s["p999_us"], s["max_us"]
    )
}

/// Slice the samples by tenant into per-tenant counts and corrected
/// latency summaries. Empty for single-tenant runs.
fn per_tenant_reports(cfg: &RunConfig, result: &RunResult) -> Vec<TenantReport> {
    cfg.tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mine = || result.samples.iter().filter(move |s| s.tenant == i);
            let count = |o: Outcome| mine().filter(|s| s.outcome == o).count() as u64;
            let mut hist = LogHistogram::new();
            for s in mine().filter(|s| s.outcome == Outcome::Done) {
                hist.record(s.latency_us);
            }
            TenantReport {
                id: t.id.clone(),
                share: t.share,
                counts: Counts {
                    submitted: mine().count() as u64,
                    done: count(Outcome::Done),
                    failed: count(Outcome::Failed),
                    shed: count(Outcome::Shed),
                    transport_errors: count(Outcome::TransportError),
                    http_429: mine().map(|s| u64::from(s.http_429s)).sum(),
                },
                latency: hist.summary_json("us"),
            }
        })
        .collect()
}

/// Per-stage summaries for exactly the run window: deserialize each
/// stage's histogram from both `/metrics` snapshots and report
/// `after.since(before)`. Stages absent from either snapshot (older
/// server) are skipped.
fn stage_window(before: &Value, after: &Value) -> Value {
    let mut stages = serde_json::Map::new();
    for name in STAGE_NAMES {
        let parse = |snapshot: &Value| -> Option<LogHistogram> {
            serde_json::from_value(snapshot.get("stages")?.get(name)?.get("histogram")?.clone())
                .ok()
        };
        let (Some(b), Some(a)) = (parse(before), parse(after)) else {
            continue;
        };
        let window = a.since(&b);
        stages.insert(name.to_string(), window.summary_json("us"));
    }
    Value::Object(stages)
}

/// A throughput-vs-offered-load table across a sweep of open-loop runs.
pub fn sweep_table(reports: &[LoadReport]) -> String {
    let mut out = format!(
        "{:>10} {:>10} {:>7} {:>6} {:>9} {:>9} {:>9}\n",
        "offered/s", "achieved/s", "done", "shed", "p50_us", "p99_us", "p999_us"
    );
    for r in reports {
        out.push_str(&format!(
            "{:>10.1} {:>10.1} {:>7} {:>6} {:>9} {:>9} {:>9}\n",
            r.offered_rate_per_s.unwrap_or(0.0),
            r.achieved_rate_per_s,
            r.counts.done,
            r.counts.shed,
            r.latency["p50_us"],
            r.latency["p99_us"],
            r.latency["p999_us"],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::JobMix;
    use crate::run::Sample;
    use serde_json::json;
    use std::time::Duration;

    fn fake_result() -> (RunConfig, RunResult) {
        let mix = JobMix::single("PR", 100, true);
        let cfg = RunConfig::open("127.0.0.1:1", 50.0, Duration::from_secs(2), 99, mix);
        let mk = |latency_us: u64, outcome: Outcome| Sample {
            class: 0,
            tenant: 0,
            intended: Duration::ZERO,
            latency_us,
            service_ms: 0.5,
            outcome,
            http_429s: 0,
            tenant_ok: true,
        };
        let hist = |values: &[u64]| {
            let mut h = LogHistogram::new();
            for &v in values {
                h.record(v);
            }
            serde_json::to_value(&h).unwrap()
        };
        let before = json!({"stages": {"execute": {"histogram": hist(&[100])}}});
        let after = json!({"stages": {"execute": {"histogram": hist(&[100, 900])}}});
        let result = RunResult {
            samples: vec![
                mk(1_000, Outcome::Done),
                mk(2_000, Outcome::Done),
                mk(40_000, Outcome::Shed),
            ],
            elapsed: Duration::from_secs(2),
            metrics_before: before,
            metrics_after: after,
        };
        (cfg, result)
    }

    #[test]
    fn report_counts_latency_and_seed() {
        let (cfg, result) = fake_result();
        let report = LoadReport::build(&cfg, &result);
        assert_eq!(report.seed, 99);
        assert_eq!(report.counts.submitted, 3);
        assert_eq!(report.counts.done, 2);
        assert_eq!(report.counts.shed, 1);
        // Shed samples stay out of the latency distribution.
        assert_eq!(report.latency["count"], 2);
        assert_eq!(report.latency_histogram.count(), 2);
        assert_eq!(report.per_class.len(), 1);
        assert_eq!(report.per_class[0].latency["count"], 2);
        assert!((report.achieved_rate_per_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stage_window_is_the_snapshot_difference() {
        let (cfg, result) = fake_result();
        let report = LoadReport::build(&cfg, &result);
        // Only the one value recorded during the window remains.
        assert_eq!(report.service_stages["execute"]["count"], 1);
        let p50 = report.service_stages["execute"]["p50_us"].as_u64().unwrap();
        assert!((870..=930).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn report_json_round_trips_and_has_required_fields() {
        let (cfg, result) = fake_result();
        let report = LoadReport::build(&cfg, &result);
        let v = report.to_json();
        for key in [
            "seed",
            "mode",
            "counts",
            "latency",
            "per_class",
            "service_stages",
        ] {
            assert!(v.get(key).is_some(), "missing report key {key}");
        }
        for q in ["p50_us", "p90_us", "p99_us", "p999_us"] {
            assert!(v["latency"].get(q).is_some(), "missing quantile {q}");
        }
        let back: LoadReport = serde_json::from_value(v).unwrap();
        assert_eq!(back.counts.done, 2);
        assert_eq!(back.latency_histogram, report.latency_histogram);
    }

    #[test]
    fn per_tenant_slices_counts_latency_and_mismatches() {
        use crate::run::TenantLoad;
        let (mut cfg, mut result) = fake_result();
        cfg = cfg.with_tenants(vec![
            TenantLoad::new("tenant-0", "k0").with_share(4),
            TenantLoad::new("tenant-1", "k1"),
        ]);
        // Reassign the fake samples: two done for tenant-0, the shed one
        // (with a forged stamp) for tenant-1.
        result.samples[2].tenant = 1;
        result.samples[2].tenant_ok = false;
        let report = LoadReport::build(&cfg, &result);
        assert_eq!(report.per_tenant.len(), 2);
        let t0 = &report.per_tenant[0];
        assert_eq!(t0.id, "tenant-0");
        assert_eq!(t0.share, 4);
        assert_eq!(t0.counts.submitted, 2);
        assert_eq!(t0.counts.done, 2);
        assert_eq!(t0.latency["count"], 2);
        assert!(t0.p99_ms() > 0.0);
        let t1 = &report.per_tenant[1];
        assert_eq!(t1.counts.shed, 1);
        assert_eq!(t1.counts.done, 0);
        assert_eq!(t1.latency["count"], 0);
        assert_eq!(report.tenant_mismatches, 1);
        let text = report.text_table();
        assert!(text.contains("tenant-0"));
        assert!(text.contains("tenant stamp mismatches: 1"));
        // The per-tenant section round-trips through JSON.
        let back: LoadReport = serde_json::from_value(report.to_json()).unwrap();
        assert_eq!(back.per_tenant.len(), 2);
        assert_eq!(back.tenant_mismatches, 1);
    }

    #[test]
    fn text_table_and_sweep_table_render() {
        let (cfg, result) = fake_result();
        let report = LoadReport::build(&cfg, &result);
        let text = report.text_table();
        assert!(text.contains("mode=open"));
        assert!(text.contains("seed=99"));
        assert!(text.contains("PR-hot"));
        let sweep = sweep_table(std::slice::from_ref(&report));
        assert!(sweep.contains("offered/s"));
        assert!(sweep.lines().count() >= 2);
    }
}
