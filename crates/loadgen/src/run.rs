//! The load-generation engine: open- and closed-loop runners.
//!
//! **Closed loop** models a fixed population of clients: each submits a
//! job, waits for the result, thinks, repeats. Offered load adapts to the
//! server — a slow server is offered less — which is gentle but hides
//! queueing collapse.
//!
//! **Open loop** models an outside arrival process: requests fire at
//! precomputed times whether or not earlier ones have finished, as real
//! independent clients do. Latency is measured from the *intended* send
//! time, not the actual one, so generator stalls and server pushback are
//! charged to the measurement instead of silently thinning the load —
//! the coordinated-omission correction.
//!
//! Admission-control pushback (HTTP 429) is honored: a shed submission is
//! retried after the server's `Retry-After`, up to a budget, and still
//! measured from its original intended time; a request that exhausts the
//! budget counts as `Shed`, separately from failures.

use crate::mix::JobMix;
use crate::rng::SplitMix64;
use crate::schedule::{build_schedule, ArrivalProcess, ScheduledRequest};
use graphmine_service::Client;
use serde_json::Value;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How load is offered.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Scheduled arrivals at `rate_per_s`, independent of responses.
    Open {
        rate_per_s: f64,
        process: ArrivalProcess,
    },
    /// `clients` synchronous loops, each sleeping `think` between jobs.
    Closed { clients: usize, think: Duration },
}

impl Mode {
    /// Wire name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Mode::Open { .. } => "open",
            Mode::Closed { .. } => "closed",
        }
    }
}

/// One load-generation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Server address, `host:port`.
    pub addr: String,
    pub mode: Mode,
    /// Arrival horizon (open) or wall-clock run length (closed).
    pub duration: Duration,
    /// Master seed: fixes the schedule, the job mix draws, and the cold
    /// seeds. Equal configs ⇒ equal request streams.
    pub seed: u64,
    pub mix: JobMix,
    /// 429-retry budget per request before it counts as shed.
    pub max_retries: u32,
    /// Sender threads for open loop (closed loop uses `clients`).
    pub concurrency: usize,
    /// Cap on waiting for any single job to reach a terminal state.
    pub job_timeout: Duration,
}

impl RunConfig {
    /// Open-loop Poisson run with library defaults.
    pub fn open(
        addr: &str,
        rate_per_s: f64,
        duration: Duration,
        seed: u64,
        mix: JobMix,
    ) -> RunConfig {
        RunConfig {
            addr: addr.to_string(),
            mode: Mode::Open {
                rate_per_s,
                process: ArrivalProcess::Poisson,
            },
            duration,
            seed,
            mix,
            max_retries: 3,
            concurrency: 16,
            job_timeout: Duration::from_secs(30),
        }
    }

    /// Closed-loop run with library defaults.
    pub fn closed(
        addr: &str,
        clients: usize,
        think: Duration,
        duration: Duration,
        seed: u64,
        mix: JobMix,
    ) -> RunConfig {
        RunConfig {
            addr: addr.to_string(),
            mode: Mode::Closed { clients, think },
            duration,
            seed,
            mix,
            max_retries: 3,
            concurrency: 16,
            job_timeout: Duration::from_secs(30),
        }
    }

    /// Requests per second this config offers (closed loop: the zero-think
    /// upper bound is unknown, so the client count over think time is a
    /// nominal figure only when think > 0).
    pub fn offered_rate(&self) -> Option<f64> {
        match &self.mode {
            Mode::Open { rate_per_s, .. } => Some(*rate_per_s),
            Mode::Closed { .. } => None,
        }
    }
}

/// Terminal classification of one generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Job reached `done`.
    Done,
    /// Job reached `failed`/`cancelled`/`timed_out`, or never turned
    /// terminal within the wait cap.
    Failed,
    /// Admission control shed it and the retry budget ran out.
    Shed,
    /// Transport-level error (connect/read/write) or non-job HTTP status.
    TransportError,
}

/// One measured request.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Index into the mix's class table.
    pub class: usize,
    /// Intended send offset from run start.
    pub intended: Duration,
    /// Coordinated-omission-corrected latency: intended send time to
    /// observed terminal state, in microseconds.
    pub latency_us: u64,
    /// Latency the *service* measured for the job (`run_ms` + `queue_ms`),
    /// 0 when unavailable. Always ≤ the corrected latency.
    pub service_ms: f64,
    pub outcome: Outcome,
    /// 429 responses absorbed by this request (including a final one that
    /// exhausted the budget).
    pub http_429s: u32,
}

/// Everything a run produced, before aggregation into a report.
#[derive(Debug)]
pub struct RunResult {
    pub samples: Vec<Sample>,
    /// Wall-clock time from first intended arrival to last terminal state.
    pub elapsed: Duration,
    /// `GET /metrics` snapshots bracketing the run, for stage-histogram
    /// differencing.
    pub metrics_before: Value,
    pub metrics_after: Value,
}

impl RunResult {
    /// Count samples with the given outcome.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.samples.iter().filter(|s| s.outcome == outcome).count()
    }

    /// Total 429 responses absorbed across all samples.
    pub fn http_429_total(&self) -> u64 {
        self.samples.iter().map(|s| u64::from(s.http_429s)).sum()
    }

    /// Jobs completed (`Done`) per second of elapsed run time.
    pub fn achieved_rate(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.count(Outcome::Done) as f64 / s
        }
    }
}

/// Execute one load run against a live server.
pub fn run(cfg: &RunConfig) -> io::Result<RunResult> {
    let mut probe = Client::new(&cfg.addr);
    let (status, metrics_before) = probe.request("GET", "/metrics", None)?;
    if status != 200 {
        return Err(io::Error::other(format!("GET /metrics returned {status}")));
    }
    let start = Instant::now();
    let samples = match &cfg.mode {
        Mode::Open {
            rate_per_s,
            process,
        } => {
            let schedule = build_schedule(*process, *rate_per_s, cfg.duration, cfg.seed, &cfg.mix);
            run_open(cfg, schedule, start)
        }
        Mode::Closed { clients, think } => run_closed(cfg, *clients, *think, start),
    };
    let elapsed = start.elapsed();
    let (status, metrics_after) = probe.request("GET", "/metrics", None)?;
    if status != 200 {
        return Err(io::Error::other(format!("GET /metrics returned {status}")));
    }
    Ok(RunResult {
        samples,
        elapsed,
        metrics_before,
        metrics_after,
    })
}

fn run_open(cfg: &RunConfig, schedule: Vec<ScheduledRequest>, start: Instant) -> Vec<Sample> {
    let schedule = Arc::new(schedule);
    let next = Arc::new(AtomicUsize::new(0));
    let workers = cfg.concurrency.max(1);
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let schedule = Arc::clone(&schedule);
            let next = Arc::clone(&next);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(&cfg.addr);
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(req) = schedule.get(i) else { break };
                    // Pace to the intended time; a late pickup (all
                    // workers busy) sends immediately and the delay shows
                    // up in the corrected latency.
                    let now = start.elapsed();
                    if req.intended > now {
                        std::thread::sleep(req.intended - now);
                    }
                    local.push(drive_request(
                        &mut client,
                        &cfg,
                        req.class,
                        req.intended,
                        &req.body,
                        start,
                    ));
                }
                local
            })
        })
        .collect();
    let mut samples = Vec::new();
    for h in handles {
        samples.extend(h.join().expect("loadgen worker panicked"));
    }
    samples.sort_by_key(|s| s.intended);
    samples
}

fn run_closed(cfg: &RunConfig, clients: usize, think: Duration, start: Instant) -> Vec<Sample> {
    let mut root = SplitMix64::new(cfg.seed);
    let handles: Vec<_> = (0..clients.max(1))
        .map(|_| {
            let mut rng = root.split();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(&cfg.addr);
                let mut local = Vec::new();
                while start.elapsed() < cfg.duration {
                    let class = cfg.mix.sample_class(&mut rng);
                    let body = cfg.mix.request_body(class, &mut rng);
                    // Closed loop sends the moment it decides to: the
                    // intended time IS the send time, so the correction
                    // is a no-op by construction.
                    let intended = start.elapsed();
                    local.push(drive_request(
                        &mut client,
                        &cfg,
                        class,
                        intended,
                        &body,
                        start,
                    ));
                    if !think.is_zero() {
                        std::thread::sleep(think);
                    }
                }
                local
            })
        })
        .collect();
    let mut samples = Vec::new();
    for h in handles {
        samples.extend(h.join().expect("loadgen client panicked"));
    }
    samples.sort_by_key(|s| s.intended);
    samples
}

/// Submit one job and wait for its terminal state, honoring 429 pushback.
/// The returned latency always runs from `intended`, whatever happened in
/// between.
fn drive_request(
    client: &mut Client,
    cfg: &RunConfig,
    class: usize,
    intended: Duration,
    body: &Value,
    start: Instant,
) -> Sample {
    let latency_from_intended = |start: Instant, intended: Duration| {
        start.elapsed().saturating_sub(intended).as_micros() as u64
    };
    let mut http_429s = 0u32;
    let mut retries_left = cfg.max_retries;
    let finish = |outcome: Outcome, service_ms: f64, http_429s: u32| Sample {
        class,
        intended,
        latency_us: latency_from_intended(start, intended),
        service_ms,
        outcome,
        http_429s,
    };
    loop {
        let response = match client.send("POST", "/jobs", Some(body)) {
            Ok(r) => r,
            Err(_) => return finish(Outcome::TransportError, 0.0, http_429s),
        };
        match response.status {
            202 => {
                let Some(id) = response.body.get("id").and_then(Value::as_u64) else {
                    return finish(Outcome::TransportError, 0.0, http_429s);
                };
                return match wait_terminal(client, id, cfg.job_timeout) {
                    Ok(status_doc) => {
                        let state = status_doc
                            .get("state")
                            .and_then(Value::as_str)
                            .unwrap_or("");
                        let service_ms = status_doc
                            .get("queue_ms")
                            .and_then(Value::as_f64)
                            .unwrap_or(0.0)
                            + status_doc
                                .get("run_ms")
                                .and_then(Value::as_f64)
                                .unwrap_or(0.0);
                        let outcome = if state == "done" {
                            Outcome::Done
                        } else {
                            Outcome::Failed
                        };
                        finish(outcome, service_ms, http_429s)
                    }
                    Err(_) => finish(Outcome::Failed, 0.0, http_429s),
                };
            }
            429 => {
                http_429s += 1;
                if retries_left == 0 {
                    return finish(Outcome::Shed, 0.0, http_429s);
                }
                retries_left -= 1;
                // Honor Retry-After, but clamp: the advertised horizon can
                // exceed the whole probe window, and a capped retry still
                // charges the wait to corrected latency.
                let advertised = response.retry_after_s.unwrap_or(0);
                let backoff = Duration::from_millis((advertised * 1000).clamp(10, 1_000));
                std::thread::sleep(backoff);
            }
            _ => return finish(Outcome::TransportError, 0.0, http_429s),
        }
    }
}

/// Poll `GET /jobs/:id` at 1 ms until terminal. Finer-grained than the
/// service client's 5 ms helper: at millisecond job latencies the poll
/// interval is the measurement floor.
fn wait_terminal(client: &mut Client, id: u64, timeout: Duration) -> io::Result<Value> {
    let deadline = Instant::now() + timeout;
    let path = format!("/jobs/{id}");
    loop {
        let (status, doc) = client.request("GET", &path, None)?;
        if status == 200 {
            let state = doc.get("state").and_then(Value::as_str).unwrap_or("");
            if matches!(state, "done" | "failed" | "cancelled" | "timed_out") {
                return Ok(doc);
            }
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("job {id} not terminal within {timeout:?}"),
            ));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn sample(outcome: Outcome, latency_us: u64, http_429s: u32) -> Sample {
        Sample {
            class: 0,
            intended: Duration::ZERO,
            latency_us,
            service_ms: 0.0,
            outcome,
            http_429s,
        }
    }

    #[test]
    fn result_counts_and_rates() {
        let r = RunResult {
            samples: vec![
                sample(Outcome::Done, 1_000, 0),
                sample(Outcome::Done, 2_000, 1),
                sample(Outcome::Shed, 50_000, 4),
                sample(Outcome::Failed, 9_000, 0),
            ],
            elapsed: Duration::from_secs(2),
            metrics_before: json!({}),
            metrics_after: json!({}),
        };
        assert_eq!(r.count(Outcome::Done), 2);
        assert_eq!(r.count(Outcome::Shed), 1);
        assert_eq!(r.count(Outcome::Failed), 1);
        assert_eq!(r.count(Outcome::TransportError), 0);
        assert_eq!(r.http_429_total(), 5);
        assert!((r.achieved_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn open_config_reports_offered_rate_and_closed_does_not() {
        let mix = JobMix::single("PR", 100, true);
        let open = RunConfig::open("127.0.0.1:1", 25.0, Duration::from_secs(1), 7, mix.clone());
        assert_eq!(open.offered_rate(), Some(25.0));
        assert_eq!(open.mode.as_str(), "open");
        let closed = RunConfig::closed(
            "127.0.0.1:1",
            4,
            Duration::from_millis(10),
            Duration::from_secs(1),
            7,
            mix,
        );
        assert_eq!(closed.offered_rate(), None);
        assert_eq!(closed.mode.as_str(), "closed");
    }
}
