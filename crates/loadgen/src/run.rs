//! The load-generation engine: open- and closed-loop runners.
//!
//! **Closed loop** models a fixed population of clients: each submits a
//! job, waits for the result, thinks, repeats. Offered load adapts to the
//! server — a slow server is offered less — which is gentle but hides
//! queueing collapse.
//!
//! **Open loop** models an outside arrival process: requests fire at
//! precomputed times whether or not earlier ones have finished, as real
//! independent clients do. Latency is measured from the *intended* send
//! time, not the actual one, so generator stalls and server pushback are
//! charged to the measurement instead of silently thinning the load —
//! the coordinated-omission correction.
//!
//! Admission-control pushback (HTTP 429) is honored: a shed submission is
//! retried after the server's `Retry-After`, up to a budget, and still
//! measured from its original intended time; a request that exhausts the
//! budget counts as `Shed`, separately from failures.

use crate::mix::JobMix;
use crate::rng::SplitMix64;
use crate::schedule::{build_schedule, ArrivalProcess, ScheduledRequest};
use graphmine_service::Client;
use serde_json::Value;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How load is offered.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Scheduled arrivals at `rate_per_s`, independent of responses.
    Open {
        rate_per_s: f64,
        process: ArrivalProcess,
    },
    /// `clients` synchronous loops, each sleeping `think` between jobs.
    Closed { clients: usize, think: Duration },
}

impl Mode {
    /// Wire name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Mode::Open { .. } => "open",
            Mode::Closed { .. } => "closed",
        }
    }
}

/// One tenant of a multi-tenant load population: the credentials to
/// submit as that tenant plus its share of the offered traffic.
///
/// The `share` is a *traffic* weight (how often the generator draws this
/// tenant), deliberately separate from the server-side DRR service
/// weight — the interesting experiments offer a tenant far more traffic
/// than its fair service share.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// Tenant id the server is expected to stamp on this tenant's jobs.
    pub id: String,
    /// API key sent as `X-Api-Key`.
    pub key: String,
    /// Relative traffic share (≥ 1; zero is treated as 1).
    pub share: u32,
}

impl TenantLoad {
    /// A tenant with an equal (unit) traffic share.
    pub fn new(id: &str, key: &str) -> TenantLoad {
        TenantLoad {
            id: id.to_string(),
            key: key.to_string(),
            share: 1,
        }
    }

    /// The same tenant offering `share` times the unit traffic.
    pub fn with_share(mut self, share: u32) -> TenantLoad {
        self.share = share;
        self
    }
}

/// One load-generation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Server address, `host:port`.
    pub addr: String,
    pub mode: Mode,
    /// Arrival horizon (open) or wall-clock run length (closed).
    pub duration: Duration,
    /// Master seed: fixes the schedule, the job mix draws, and the cold
    /// seeds. Equal configs ⇒ equal request streams.
    pub seed: u64,
    pub mix: JobMix,
    /// 429-retry budget per request before it counts as shed.
    pub max_retries: u32,
    /// Sender threads for open loop (closed loop uses `clients`).
    pub concurrency: usize,
    /// Cap on waiting for any single job to reach a terminal state.
    pub job_timeout: Duration,
    /// Multi-tenant population; empty means unauthenticated single-tenant
    /// load. Each request draws a tenant by `share` weight (deterministic
    /// under the master seed) and submits with that tenant's key.
    pub tenants: Vec<TenantLoad>,
}

impl RunConfig {
    /// Open-loop Poisson run with library defaults.
    pub fn open(
        addr: &str,
        rate_per_s: f64,
        duration: Duration,
        seed: u64,
        mix: JobMix,
    ) -> RunConfig {
        RunConfig {
            addr: addr.to_string(),
            mode: Mode::Open {
                rate_per_s,
                process: ArrivalProcess::Poisson,
            },
            duration,
            seed,
            mix,
            max_retries: 3,
            concurrency: 16,
            job_timeout: Duration::from_secs(30),
            tenants: Vec::new(),
        }
    }

    /// Closed-loop run with library defaults.
    pub fn closed(
        addr: &str,
        clients: usize,
        think: Duration,
        duration: Duration,
        seed: u64,
        mix: JobMix,
    ) -> RunConfig {
        RunConfig {
            addr: addr.to_string(),
            mode: Mode::Closed { clients, think },
            duration,
            seed,
            mix,
            max_retries: 3,
            concurrency: 16,
            job_timeout: Duration::from_secs(30),
            tenants: Vec::new(),
        }
    }

    /// The same run offered by a multi-tenant population.
    pub fn with_tenants(mut self, tenants: Vec<TenantLoad>) -> RunConfig {
        self.tenants = tenants;
        self
    }

    /// Requests per second this config offers (closed loop: the zero-think
    /// upper bound is unknown, so the client count over think time is a
    /// nominal figure only when think > 0).
    pub fn offered_rate(&self) -> Option<f64> {
        match &self.mode {
            Mode::Open { rate_per_s, .. } => Some(*rate_per_s),
            Mode::Closed { .. } => None,
        }
    }
}

/// Terminal classification of one generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Job reached `done`.
    Done,
    /// Job reached `failed`/`cancelled`/`timed_out`, or never turned
    /// terminal within the wait cap.
    Failed,
    /// Admission control shed it and the retry budget ran out.
    Shed,
    /// Transport-level error (connect/read/write) or non-job HTTP status.
    TransportError,
}

/// One measured request.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Index into the mix's class table.
    pub class: usize,
    /// Index into the run's tenant table (0 for single-tenant runs).
    pub tenant: usize,
    /// Intended send offset from run start.
    pub intended: Duration,
    /// Coordinated-omission-corrected latency: intended send time to
    /// observed terminal state, in microseconds.
    pub latency_us: u64,
    /// Latency the *service* measured for the job (`run_ms` + `queue_ms`),
    /// 0 when unavailable. Always ≤ the corrected latency.
    pub service_ms: f64,
    pub outcome: Outcome,
    /// 429 responses absorbed by this request (including a final one that
    /// exhausted the budget).
    pub http_429s: u32,
    /// Whether every tenant stamp the server returned for this request
    /// matched the tenant whose key submitted it. `false` is evidence of
    /// cross-tenant leakage and is counted by the report.
    pub tenant_ok: bool,
}

/// Everything a run produced, before aggregation into a report.
#[derive(Debug)]
pub struct RunResult {
    pub samples: Vec<Sample>,
    /// Wall-clock time from first intended arrival to last terminal state.
    pub elapsed: Duration,
    /// `GET /metrics` snapshots bracketing the run, for stage-histogram
    /// differencing.
    pub metrics_before: Value,
    pub metrics_after: Value,
}

impl RunResult {
    /// Count samples with the given outcome.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.samples.iter().filter(|s| s.outcome == outcome).count()
    }

    /// Total 429 responses absorbed across all samples.
    pub fn http_429_total(&self) -> u64 {
        self.samples.iter().map(|s| u64::from(s.http_429s)).sum()
    }

    /// Jobs completed (`Done`) per second of elapsed run time.
    pub fn achieved_rate(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.count(Outcome::Done) as f64 / s
        }
    }

    /// Requests whose server-side tenant stamp did not match the key that
    /// submitted them. Anything above zero is cross-tenant leakage.
    pub fn tenant_mismatches(&self) -> u64 {
        self.samples.iter().filter(|s| !s.tenant_ok).count() as u64
    }
}

/// Weighted tenant draw by traffic `share`; `None` on single-tenant runs.
fn pick_tenant(tenants: &[TenantLoad], rng: &mut SplitMix64) -> Option<usize> {
    if tenants.is_empty() {
        return None;
    }
    let total: u64 = tenants.iter().map(|t| u64::from(t.share.max(1))).sum();
    let mut roll = rng.next_u64() % total;
    for (i, t) in tenants.iter().enumerate() {
        let share = u64::from(t.share.max(1));
        if roll < share {
            return Some(i);
        }
        roll -= share;
    }
    Some(tenants.len() - 1)
}

/// Execute one load run against a live server.
pub fn run(cfg: &RunConfig) -> io::Result<RunResult> {
    let mut probe = Client::new(&cfg.addr);
    let (status, metrics_before) = probe.request("GET", "/metrics", None)?;
    if status != 200 {
        return Err(io::Error::other(format!("GET /metrics returned {status}")));
    }
    let start = Instant::now();
    let samples = match &cfg.mode {
        Mode::Open {
            rate_per_s,
            process,
        } => {
            let schedule = build_schedule(*process, *rate_per_s, cfg.duration, cfg.seed, &cfg.mix);
            run_open(cfg, schedule, start)
        }
        Mode::Closed { clients, think } => run_closed(cfg, *clients, *think, start),
    };
    let elapsed = start.elapsed();
    let (status, metrics_after) = probe.request("GET", "/metrics", None)?;
    if status != 200 {
        return Err(io::Error::other(format!("GET /metrics returned {status}")));
    }
    Ok(RunResult {
        samples,
        elapsed,
        metrics_before,
        metrics_after,
    })
}

fn run_open(cfg: &RunConfig, schedule: Vec<ScheduledRequest>, start: Instant) -> Vec<Sample> {
    let schedule = Arc::new(schedule);
    let next = Arc::new(AtomicUsize::new(0));
    let workers = cfg.concurrency.max(1);
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let schedule = Arc::clone(&schedule);
            let next = Arc::clone(&next);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(&cfg.addr);
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(req) = schedule.get(i) else { break };
                    // Pace to the intended time; a late pickup (all
                    // workers busy) sends immediately and the delay shows
                    // up in the corrected latency.
                    let now = start.elapsed();
                    if req.intended > now {
                        std::thread::sleep(req.intended - now);
                    }
                    // The tenant draw is a pure function of (seed, index),
                    // so the assignment is identical whichever worker
                    // thread picks the request up.
                    let mut trng =
                        SplitMix64::new(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64);
                    let tenant = pick_tenant(&cfg.tenants, &mut trng);
                    local.push(drive_request(
                        &mut client,
                        &cfg,
                        req.class,
                        tenant,
                        req.intended,
                        &req.body,
                        start,
                    ));
                }
                local
            })
        })
        .collect();
    let mut samples = Vec::new();
    for h in handles {
        samples.extend(h.join().expect("loadgen worker panicked"));
    }
    samples.sort_by_key(|s| s.intended);
    samples
}

fn run_closed(cfg: &RunConfig, clients: usize, think: Duration, start: Instant) -> Vec<Sample> {
    let mut root = SplitMix64::new(cfg.seed);
    let handles: Vec<_> = (0..clients.max(1))
        .map(|_| {
            let mut rng = root.split();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(&cfg.addr);
                let mut local = Vec::new();
                while start.elapsed() < cfg.duration {
                    let class = cfg.mix.sample_class(&mut rng);
                    let body = cfg.mix.request_body(class, &mut rng);
                    let tenant = pick_tenant(&cfg.tenants, &mut rng);
                    // Closed loop sends the moment it decides to: the
                    // intended time IS the send time, so the correction
                    // is a no-op by construction.
                    let intended = start.elapsed();
                    local.push(drive_request(
                        &mut client,
                        &cfg,
                        class,
                        tenant,
                        intended,
                        &body,
                        start,
                    ));
                    if !think.is_zero() {
                        std::thread::sleep(think);
                    }
                }
                local
            })
        })
        .collect();
    let mut samples = Vec::new();
    for h in handles {
        samples.extend(h.join().expect("loadgen client panicked"));
    }
    samples.sort_by_key(|s| s.intended);
    samples
}

/// Submit one job and wait for its terminal state, honoring 429 pushback.
/// The returned latency always runs from `intended`, whatever happened in
/// between.
fn drive_request(
    client: &mut Client,
    cfg: &RunConfig,
    class: usize,
    tenant: Option<usize>,
    intended: Duration,
    body: &Value,
    start: Instant,
) -> Sample {
    // Submit as the drawn tenant; the connection stays kept-alive across
    // key changes because the key travels per request.
    client.set_api_key(tenant.map(|t| cfg.tenants[t].key.as_str()));
    let expected = tenant.map(|t| cfg.tenants[t].id.as_str());
    let stamp_matches = |doc: &Value| match expected {
        None => true,
        Some(id) => doc.get("tenant").and_then(Value::as_str) == Some(id),
    };
    let latency_from_intended = |start: Instant, intended: Duration| {
        start.elapsed().saturating_sub(intended).as_micros() as u64
    };
    let mut http_429s = 0u32;
    let mut retries_left = cfg.max_retries;
    let finish = |outcome: Outcome, service_ms: f64, http_429s: u32, tenant_ok: bool| Sample {
        class,
        tenant: tenant.unwrap_or(0),
        intended,
        latency_us: latency_from_intended(start, intended),
        service_ms,
        outcome,
        http_429s,
        tenant_ok,
    };
    loop {
        let response = match client.send("POST", "/jobs", Some(body)) {
            Ok(r) => r,
            Err(_) => return finish(Outcome::TransportError, 0.0, http_429s, true),
        };
        match response.status {
            202 => {
                let accepted_ok = stamp_matches(&response.body);
                let Some(id) = response.body.get("id").and_then(Value::as_u64) else {
                    return finish(Outcome::TransportError, 0.0, http_429s, accepted_ok);
                };
                return match wait_terminal(client, id, cfg.job_timeout) {
                    Ok(status_doc) => {
                        let state = status_doc
                            .get("state")
                            .and_then(Value::as_str)
                            .unwrap_or("");
                        let service_ms = status_doc
                            .get("queue_ms")
                            .and_then(Value::as_f64)
                            .unwrap_or(0.0)
                            + status_doc
                                .get("run_ms")
                                .and_then(Value::as_f64)
                                .unwrap_or(0.0);
                        let outcome = if state == "done" {
                            Outcome::Done
                        } else {
                            Outcome::Failed
                        };
                        let ok = accepted_ok && stamp_matches(&status_doc);
                        finish(outcome, service_ms, http_429s, ok)
                    }
                    Err(_) => finish(Outcome::Failed, 0.0, http_429s, accepted_ok),
                };
            }
            429 => {
                http_429s += 1;
                if retries_left == 0 {
                    return finish(Outcome::Shed, 0.0, http_429s, true);
                }
                retries_left -= 1;
                // Honor Retry-After, but clamp: the advertised horizon can
                // exceed the whole probe window, and a capped retry still
                // charges the wait to corrected latency.
                let advertised = response.retry_after_s.unwrap_or(0);
                let backoff = Duration::from_millis((advertised * 1000).clamp(10, 1_000));
                std::thread::sleep(backoff);
            }
            _ => return finish(Outcome::TransportError, 0.0, http_429s, true),
        }
    }
}

/// Poll `GET /jobs/:id` at 1 ms until terminal. Finer-grained than the
/// service client's 5 ms helper: at millisecond job latencies the poll
/// interval is the measurement floor.
fn wait_terminal(client: &mut Client, id: u64, timeout: Duration) -> io::Result<Value> {
    let deadline = Instant::now() + timeout;
    let path = format!("/jobs/{id}");
    loop {
        let (status, doc) = client.request("GET", &path, None)?;
        if status == 200 {
            let state = doc.get("state").and_then(Value::as_str).unwrap_or("");
            if matches!(state, "done" | "failed" | "cancelled" | "timed_out") {
                return Ok(doc);
            }
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("job {id} not terminal within {timeout:?}"),
            ));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn sample(outcome: Outcome, latency_us: u64, http_429s: u32) -> Sample {
        Sample {
            class: 0,
            tenant: 0,
            intended: Duration::ZERO,
            latency_us,
            service_ms: 0.0,
            outcome,
            http_429s,
            tenant_ok: true,
        }
    }

    #[test]
    fn result_counts_and_rates() {
        let r = RunResult {
            samples: vec![
                sample(Outcome::Done, 1_000, 0),
                sample(Outcome::Done, 2_000, 1),
                sample(Outcome::Shed, 50_000, 4),
                sample(Outcome::Failed, 9_000, 0),
            ],
            elapsed: Duration::from_secs(2),
            metrics_before: json!({}),
            metrics_after: json!({}),
        };
        assert_eq!(r.count(Outcome::Done), 2);
        assert_eq!(r.count(Outcome::Shed), 1);
        assert_eq!(r.count(Outcome::Failed), 1);
        assert_eq!(r.count(Outcome::TransportError), 0);
        assert_eq!(r.http_429_total(), 5);
        assert!((r.achieved_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn open_config_reports_offered_rate_and_closed_does_not() {
        let mix = JobMix::single("PR", 100, true);
        let open = RunConfig::open("127.0.0.1:1", 25.0, Duration::from_secs(1), 7, mix.clone());
        assert_eq!(open.offered_rate(), Some(25.0));
        assert_eq!(open.mode.as_str(), "open");
        let closed = RunConfig::closed(
            "127.0.0.1:1",
            4,
            Duration::from_millis(10),
            Duration::from_secs(1),
            7,
            mix,
        );
        assert_eq!(closed.offered_rate(), None);
        assert_eq!(closed.mode.as_str(), "closed");
    }

    #[test]
    fn tenant_draws_follow_traffic_shares() {
        let tenants = vec![
            TenantLoad::new("tenant-0", "k0").with_share(3),
            TenantLoad::new("tenant-1", "k1"),
        ];
        let mut rng = SplitMix64::new(17);
        let n = 8_000;
        let zero = (0..n)
            .filter(|_| pick_tenant(&tenants, &mut rng) == Some(0))
            .count() as f64;
        let frac = zero / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "tenant-0 fraction {frac}");
        // Single-tenant runs draw no tenant at all.
        assert_eq!(pick_tenant(&[], &mut rng), None);
    }

    #[test]
    fn mismatched_stamps_are_counted_as_leakage() {
        let mut bad = sample(Outcome::Done, 1_000, 0);
        bad.tenant_ok = false;
        let r = RunResult {
            samples: vec![sample(Outcome::Done, 500, 0), bad],
            elapsed: Duration::from_secs(1),
            metrics_before: json!({}),
            metrics_after: json!({}),
        };
        assert_eq!(r.tenant_mismatches(), 1);
    }
}
