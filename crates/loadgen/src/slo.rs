//! Maximum-sustainable-throughput search under a latency SLO.
//!
//! The headline number a robust benchmark wants is not "throughput at
//! some arbitrary offered load" but *the highest arrival rate the
//! service sustains while meeting its tail-latency objective* — beyond
//! it, queueing theory guarantees the tail diverges. The search probes
//! with short open-loop runs: geometric expansion doubles the rate until
//! a probe violates the SLO (bracketing the knee), then bisection
//! narrows the bracket. Probe seeds derive deterministically from the
//! base seed and probe index, so a search is exactly repeatable.

use crate::report::LoadReport;
use crate::run::{self, Mode, RunConfig};
use serde::{Deserialize, Serialize};
use std::io;

/// Search parameters.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// The objective: corrected p99 must not exceed this many ms.
    pub p99_limit_ms: f64,
    /// First probe rate (requests/second).
    pub initial_rate: f64,
    /// Stop when the bracket is within this relative width (e.g. 0.1 ⇒
    /// upper/lower < 1.1).
    pub resolution: f64,
    /// Hard cap on probes (expansion + bisection).
    pub max_probes: usize,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            p99_limit_ms: 50.0,
            initial_rate: 10.0,
            resolution: 0.1,
            max_probes: 12,
        }
    }
}

/// One probe of the search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Probe {
    pub rate_per_s: f64,
    pub seed: u64,
    pub p99_ms: f64,
    pub achieved_rate_per_s: f64,
    pub shed: u64,
    pub transport_errors: u64,
    /// Whether this probe met the SLO.
    pub pass: bool,
}

/// The search outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloResult {
    pub p99_limit_ms: f64,
    /// Highest probed rate that met the SLO; 0 when even the initial rate
    /// violated it and bisection-down found no passing rate.
    pub max_sustainable_rate_per_s: f64,
    /// The bracket narrowed to `resolution` (or probes ran out first).
    pub converged: bool,
    /// Every probe, in execution order.
    pub probes: Vec<Probe>,
    /// Full report of the highest passing probe — carries the per-class
    /// and per-stage percentile summaries at the sustained rate. `None`
    /// when no probe passed.
    pub best_report: Option<LoadReport>,
}

impl SloResult {
    /// Machine-readable JSON.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("slo result serializes")
    }
}

/// A probe passes when its corrected p99 meets the objective, nothing was
/// shed past the retry budget, and the transport held up.
fn passes(limit_ms: f64, report: &LoadReport) -> bool {
    report.counts.done > 0
        && report.counts.transport_errors == 0
        && report.counts.shed == 0
        && report.p99_ms() <= limit_ms
}

/// Run the search. `base` supplies the target address, probe duration,
/// mix, seed, and retry policy; its mode is replaced per probe with an
/// open-loop run at the probed rate.
pub fn find_max_sustainable(base: &RunConfig, slo: &SloConfig) -> io::Result<SloResult> {
    assert!(slo.initial_rate > 0.0, "initial rate must be positive");
    let mut probes: Vec<Probe> = Vec::new();
    let mut probe_at = |rate: f64, index: usize| -> io::Result<(bool, LoadReport)> {
        let mut cfg = base.clone();
        // Each probe gets its own deterministic stream; splitmix-style
        // scramble keeps neighboring probe seeds uncorrelated.
        cfg.seed = base
            .seed
            .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        cfg.mode = Mode::Open {
            rate_per_s: rate,
            process: match base.mode {
                Mode::Open { process, .. } => process,
                Mode::Closed { .. } => crate::schedule::ArrivalProcess::Poisson,
            },
        };
        let result = run::run(&cfg)?;
        let report = LoadReport::build(&cfg, &result);
        let pass = passes(slo.p99_limit_ms, &report);
        probes.push(Probe {
            rate_per_s: rate,
            seed: cfg.seed,
            p99_ms: report.p99_ms(),
            achieved_rate_per_s: report.achieved_rate_per_s,
            shed: report.counts.shed,
            transport_errors: report.counts.transport_errors,
            pass,
        });
        Ok((pass, report))
    };

    // Expansion: double until a probe fails (or probes run out).
    let mut lo = 0.0f64; // highest passing rate seen
    let mut hi: Option<f64> = None; // lowest failing rate seen
    let mut best_report: Option<LoadReport> = None;
    let mut rate = slo.initial_rate;
    let mut index = 0;
    while index < slo.max_probes {
        let (pass, report) = probe_at(rate, index)?;
        index += 1;
        if pass {
            lo = rate;
            best_report = Some(report);
            rate *= 2.0;
        } else {
            hi = Some(rate);
            break;
        }
    }

    // Bisection inside (lo, hi). With lo == 0 (initial rate failed) this
    // bisects down toward zero until the bracket closes.
    let mut converged = hi.is_none(); // all expansion probes passed ⇒ lo is a floor
    if let Some(mut high) = hi {
        loop {
            let width_ok = lo > 0.0 && (high - lo) <= lo * slo.resolution;
            let floor_ok = lo == 0.0 && high <= slo.initial_rate * slo.resolution.max(0.01);
            if width_ok || floor_ok {
                converged = true;
                break;
            }
            if index >= slo.max_probes {
                break;
            }
            let mid = if lo > 0.0 {
                (lo + high) / 2.0
            } else {
                high / 2.0
            };
            let (pass, report) = probe_at(mid, index)?;
            index += 1;
            if pass {
                lo = mid;
                best_report = Some(report);
            } else {
                high = mid;
            }
        }
    }

    Ok(SloResult {
        p99_limit_ms: slo.p99_limit_ms,
        max_sustainable_rate_per_s: lo,
        converged,
        probes,
        best_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_core::LogHistogram;
    use serde_json::json;

    fn report_with_p99_us(p99_us: u64, shed: u64) -> LoadReport {
        let mut h = LogHistogram::new();
        h.record(p99_us);
        LoadReport {
            mode: "open".into(),
            process: Some("poisson".into()),
            clients: None,
            think_ms: None,
            seed: 1,
            duration_s: 1.0,
            elapsed_s: 1.0,
            offered_rate_per_s: Some(10.0),
            achieved_rate_per_s: 10.0,
            counts: crate::report::Counts {
                submitted: 1,
                done: 1,
                failed: 0,
                shed,
                transport_errors: 0,
                http_429: 0,
            },
            latency: json!({}),
            latency_histogram: h,
            per_class: vec![],
            service_stages: json!({}),
        }
    }

    #[test]
    fn pass_criterion_checks_p99_and_sheds() {
        // 10 ms p99 against a 50 ms SLO passes…
        assert!(passes(50.0, &report_with_p99_us(10_000, 0)));
        // …a 100 ms p99 does not…
        assert!(!passes(50.0, &report_with_p99_us(100_000, 0)));
        // …and sheds disqualify even a fast probe.
        assert!(!passes(50.0, &report_with_p99_us(10_000, 3)));
    }

    #[test]
    fn probe_seeds_are_deterministic_and_distinct() {
        let base = 7u64;
        let seed = |i: u64| base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        assert_eq!(seed(3), seed(3));
        assert_ne!(seed(0), seed(1));
    }

    #[test]
    fn slo_result_serializes_with_required_fields() {
        let r = SloResult {
            p99_limit_ms: 50.0,
            max_sustainable_rate_per_s: 80.0,
            converged: true,
            probes: vec![Probe {
                rate_per_s: 80.0,
                seed: 9,
                p99_ms: 31.0,
                achieved_rate_per_s: 79.0,
                shed: 0,
                transport_errors: 0,
                pass: true,
            }],
            best_report: None,
        };
        let v = r.to_json();
        assert_eq!(v["max_sustainable_rate_per_s"], 80.0);
        assert_eq!(v["probes"][0]["pass"], true);
        let back: SloResult = serde_json::from_value(v).unwrap();
        assert_eq!(back.probes.len(), 1);
    }
}
