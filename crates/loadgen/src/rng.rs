//! SplitMix64 — the only randomness the load generator uses.
//!
//! The whole point of a benchmarking harness is reproducibility: given
//! the same seed, two runs must submit the *identical* job sequence at
//! the *identical* intended times, or a regression between runs cannot
//! be attributed to the system under test. SplitMix64 is tiny, fast,
//! has no dependency, and its output is fixed for all time — unlike a
//! third-party RNG crate whose stream may change across versions.

/// Deterministic 64-bit generator (Steele, Lea & Flood's SplitMix64).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Equal seeds ⇒ equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An independent child stream, for handing to a worker or client
    /// thread without sharing (and thus order-coupling) the parent.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// Exponentially distributed draw with the given rate (events/second),
/// in seconds — the inter-arrival time of a Poisson process. Uses
/// inverse-CDF sampling; the `1 - u` keeps `ln` away from zero.
pub fn exp_interval_s(rng: &mut SplitMix64, rate_per_s: f64) -> f64 {
    let u = rng.next_f64();
    -(1.0 - u).ln() / rate_per_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_reference_values() {
        // First outputs for seed 0, per the published SplitMix64 stream.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SplitMix64::new(123);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn exp_intervals_have_roughly_the_right_mean() {
        let mut rng = SplitMix64::new(42);
        let rate = 50.0;
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exp_interval_s(&mut rng, rate)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.002,
            "mean inter-arrival {mean} vs expected {}",
            1.0 / rate
        );
    }

    #[test]
    fn split_streams_diverge_but_are_deterministic() {
        let mut parent1 = SplitMix64::new(9);
        let mut parent2 = SplitMix64::new(9);
        let mut child1 = parent1.split();
        let mut child2 = parent2.split();
        assert_eq!(child1.next_u64(), child2.next_u64());
        assert_ne!(child1.next_u64(), parent1.next_u64());
    }
}
