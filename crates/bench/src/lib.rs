//! Shared fixtures for the Criterion benchmarks.
//!
//! Every table and figure of the paper has a bench group in
//! `benches/figures.rs`; this library provides the lazily built quick-scale
//! run database they analyze, so `cargo bench` completes in minutes while
//! still exercising the identical code paths the harness uses at full
//! scale.

use graphmine_core::RunDb;
use graphmine_harness::{run_matrix, ScaleProfile};
use std::sync::OnceLock;

/// A quick-profile run database, built once per bench process.
pub fn quick_db() -> &'static RunDb {
    static DB: OnceLock<RunDb> = OnceLock::new();
    DB.get_or_init(|| run_matrix(ScaleProfile::Quick, |_| ()))
}
