//! `kernels` — measure edges-per-second for the bandwidth-bound kernels
//! across adjacency representation × scatter direction × thread count, and
//! write the machine-readable summary `BENCH_kernels.json`.
//!
//! Unlike the Criterion benches (statistical, human-oriented), this is the
//! summarizer CI and the experiment log consume: one JSON file with one
//! record per kernel × workload × representation × direction × threads,
//! each carrying wall-clock, the deterministic edge-traversal count from
//! the behavior trace, and the derived edges/sec. Workload records carry
//! the neighbor-payload byte counts of both representations, so the
//! compression ratio is part of the same artifact as the throughput
//! numbers.
//!
//! Each swept thread count runs inside its own rayon pool built with
//! exactly that many workers; every record carries both the requested
//! pool size (`threads`) and the worker count the pool actually reported
//! (`pool_threads`), so a harness that cannot deliver the requested
//! parallelism is visible in the artifact instead of silently mislabeled.
//!
//! Usage: `kernels [--out PATH] [--edges N] [--grid-side N] [--iters N]
//! [--runs N] [--threads LIST] [--baseline PATH]` (defaults:
//! BENCH_kernels.json, 500000, 256, 20, 3, "1,4,8"; the reported
//! wall-clock is the best of `runs`). With `--baseline`, a previous
//! BENCH_kernels.json is read and every record that matches on
//! kernel × workload × representation × direction × threads (baseline
//! rows without a `threads` field are treated as single-threaded) gains
//! `baseline_edges_per_sec` and `speedup_vs_baseline` fields — run it
//! against the checked-in file to see the per-PR perf delta.

use graphmine_algos::{run_algorithm_digest, AlgorithmKind, SuiteConfig, Workload};
use graphmine_engine::{DirectionMode, ExecutionConfig, RunTrace};
use graphmine_graph::{Direction, Representation};
use serde_json::{json, Value};
use std::time::Instant;

struct Args {
    out: std::path::PathBuf,
    edges: usize,
    grid_side: usize,
    iters: usize,
    runs: usize,
    threads: Vec<usize>,
    baseline: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        out: std::path::PathBuf::from("BENCH_kernels.json"),
        edges: 500_000,
        grid_side: 256,
        iters: 20,
        runs: 3,
        threads: vec![1, 4, 8],
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--out" => out.out = std::path::PathBuf::from(value("--out")?),
            "--edges" => {
                out.edges = value("--edges")?
                    .parse()
                    .map_err(|_| "unparseable --edges")?
            }
            "--grid-side" => {
                out.grid_side = value("--grid-side")?
                    .parse()
                    .map_err(|_| "unparseable --grid-side")?
            }
            "--iters" => {
                out.iters = value("--iters")?
                    .parse()
                    .map_err(|_| "unparseable --iters")?
            }
            "--runs" => {
                out.runs = value("--runs")?
                    .parse::<usize>()
                    .map_err(|_| "unparseable --runs")?
                    .max(1)
            }
            "--threads" => {
                out.threads = value("--threads")?
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("unparseable --threads entry `{t}`"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if out.threads.is_empty() {
                    return Err("--threads needs at least one count".to_string());
                }
            }
            "--baseline" => out.baseline = Some(std::path::PathBuf::from(value("--baseline")?)),
            other => return Err(format!("unknown kernels flag `{other}`")),
        }
    }
    Ok(out)
}

/// Edge traversals of a run: gather-side edge reads plus scatter-side
/// pre-combine messages. Deterministic (trace counters), so the same for
/// both representations — only the wall-clock denominator differs.
fn edge_traversals(trace: &RunTrace) -> u64 {
    trace
        .iterations
        .iter()
        .map(|it| it.edge_reads + it.messages)
        .sum()
}

fn workload_record(name: &str, plain: &Workload) -> (Value, Workload) {
    let compressed = plain
        .with_representation(Representation::Compressed)
        .expect("benchmark workloads have sorted rows");
    let g = plain.graph();
    let plain_bytes = g.neighbor_payload_bytes(Direction::Out);
    let packed_bytes = compressed.graph().neighbor_payload_bytes(Direction::Out);
    let record = json!({
        "workload": name,
        "vertices": g.num_vertices(),
        "edges": g.num_edges(),
        "neighbor_bytes_plain": plain_bytes,
        "neighbor_bytes_compressed": packed_bytes,
        "compression_ratio": plain_bytes as f64 / packed_bytes.max(1) as f64,
    });
    (record, compressed)
}

fn main() -> std::process::ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return std::process::ExitCode::FAILURE;
        }
    };

    let powerlaw = Workload::powerlaw(args.edges, 2.5, 42);
    let grid = Workload::grid(args.grid_side, 42);
    let (pl_record, pl_compressed) = workload_record("powerlaw", &powerlaw);
    let (grid_record, grid_compressed) = workload_record("grid", &grid);

    // The bandwidth-bound kernels of the suite: PR (dense pull-friendly),
    // SSSP (sparse push-friendly), CC (label flood) on power-law; LBP on
    // the grid for the regular-topology contrast.
    let cells: Vec<(AlgorithmKind, &str, &Workload, &Workload)> = vec![
        (AlgorithmKind::Pr, "powerlaw", &powerlaw, &pl_compressed),
        (AlgorithmKind::Sssp, "powerlaw", &powerlaw, &pl_compressed),
        (AlgorithmKind::Cc, "powerlaw", &powerlaw, &pl_compressed),
        (AlgorithmKind::Lbp, "grid", &grid, &grid_compressed),
    ];

    // Results must be bit-identical across representations, directions are
    // checked pairwise inside the sweep, and across thread counts: the same
    // cell × direction × representation must digest identically at every
    // pool size (the scaling story is free to change wall-clock, never
    // bits).
    let mut reference_digests: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();

    let mut records = Vec::new();
    for &threads in &args.threads {
        let pool = match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cannot build {threads}-thread pool: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        pool.install(|| {
            // The parallelism the pool actually delivers; recorded per row
            // so a harness pinned to fewer workers is visible in the data.
            let pool_threads = rayon::current_num_threads();
            for (alg, wname, plain, compressed) in &cells {
                for dir in [
                    DirectionMode::Push,
                    DirectionMode::Pull,
                    DirectionMode::Auto,
                ] {
                    let dir_name = match dir {
                        DirectionMode::Push => "push",
                        DirectionMode::Pull => "pull",
                        DirectionMode::Auto => "auto",
                    };
                    let config = SuiteConfig {
                        exec: ExecutionConfig::with_max_iterations(args.iters).with_direction(dir),
                        ..SuiteConfig::default()
                    };
                    let mut digests = Vec::new();
                    for (repr, workload) in [
                        (Representation::Plain, *plain),
                        (Representation::Compressed, *compressed),
                    ] {
                        // Warm-up run, then best-of-N timed runs.
                        let (digest, trace) = run_algorithm_digest(*alg, workload, &config)
                            .unwrap_or_else(|e| panic!("{alg}: {e}"));
                        let traversals = edge_traversals(&trace);
                        let mut best = f64::INFINITY;
                        for _ in 0..args.runs {
                            let t0 = Instant::now();
                            let _ = run_algorithm_digest(*alg, workload, &config);
                            best = best.min(t0.elapsed().as_secs_f64());
                        }
                        let cell_key =
                            format!("{} {} {} {}", alg.abbrev(), wname, repr.name(), dir_name);
                        match reference_digests.get(&cell_key) {
                            Some(&expected) => assert_eq!(
                                expected, digest,
                                "{cell_key}: digest changed between thread counts"
                            ),
                            None => {
                                reference_digests.insert(cell_key, digest);
                            }
                        }
                        digests.push(digest);
                        records.push(json!({
                            "kernel": alg.abbrev(),
                            "workload": wname,
                            "representation": repr.name(),
                            "direction": dir_name,
                            "threads": threads,
                            "pool_threads": pool_threads,
                            "iterations": trace.num_iterations(),
                            "edge_traversals": traversals,
                            "wall_ms": best * 1e3,
                            "edges_per_sec": traversals as f64 / best.max(1e-12),
                        }));
                    }
                    // The whole exercise is void if the representations disagree.
                    assert_eq!(
                        digests[0], digests[1],
                        "{alg} ({dir_name}, {threads}t): plain vs compressed results diverged"
                    );
                }
            }
        });
    }

    // Derived per-kernel speedups (compressed vs plain at equal direction
    // and thread count; plain/compressed records are pushed adjacently).
    let mut speedups = Vec::new();
    for pair in records.chunks(2) {
        let (p, c) = (&pair[0], &pair[1]);
        let plain_eps = p["edges_per_sec"].as_f64().unwrap_or(0.0);
        let packed_eps = c["edges_per_sec"].as_f64().unwrap_or(0.0);
        speedups.push(json!({
            "kernel": p["kernel"],
            "workload": p["workload"],
            "direction": p["direction"],
            "threads": p["threads"],
            "speedup_compressed_vs_plain": if plain_eps > 0.0 { packed_eps / plain_eps } else { 0.0 },
        }));
    }

    // Annotate against a previous BENCH_kernels.json, keyed by
    // kernel × workload × representation × direction × threads. Baseline
    // rows from before the threads sweep carry no `threads` field and are
    // treated as single-threaded.
    let mut baseline_source = Value::Null;
    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
        let base: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("unparseable baseline {}: {e}", path.display()));
        let empty = Vec::new();
        let base_records = base["kernels"].as_array().unwrap_or(&empty);
        for record in &mut records {
            let baseline_eps = base_records
                .iter()
                .find(|b| {
                    ["kernel", "workload", "representation", "direction"]
                        .iter()
                        .all(|k| b[*k] == record[*k])
                        && b["threads"].as_u64().unwrap_or(1) == record["threads"].as_u64().unwrap()
                })
                .and_then(|b| b["edges_per_sec"].as_f64());
            if let Some(eps) = baseline_eps {
                let ours = record["edges_per_sec"].as_f64().unwrap_or(0.0);
                record["baseline_edges_per_sec"] = json!(eps);
                record["speedup_vs_baseline"] = json!(if eps > 0.0 { ours / eps } else { 0.0 });
            }
        }
        baseline_source = json!(path.display().to_string());
    }

    let doc = json!({
        "schema": "graphmine/bench-kernels/v2",
        "baseline_source": baseline_source,
        "config": {
            "powerlaw_edges": args.edges,
            "grid_side": args.grid_side,
            "max_iterations": args.iters,
            "timed_runs": args.runs,
            "threads_swept": args.threads,
            "host_parallelism": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        },
        "workloads": [pl_record, grid_record],
        "kernels": records,
        "speedups": speedups,
    });
    let text = serde_json::to_string_pretty(&doc).expect("static JSON serializes");
    if let Err(e) = std::fs::write(&args.out, text) {
        eprintln!("cannot write {}: {e}", args.out.display());
        return std::process::ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());
    std::process::ExitCode::SUCCESS
}
