//! `multitenant` — the multi-tenant isolation benchmark behind
//! `BENCH_multitenant.json`: N deterministically derived tenants share one
//! DRR-scheduled worker pool running real engine jobs, tenant 0 floods
//! small jobs far past its admission quota, and the artifact records
//! whether the victims noticed.
//!
//! The service demonstrates isolation over HTTP (see the loadgen
//! `--tenants` flags and the CI shard smoke); this binary is the
//! *in-process* version of the same story so the committed artifact is
//! reproducible without sockets: the exact [`DrrQueue`] +
//! [`TenantRegistry`] pair the server schedules with, fed by open-loop
//! submitters whose latency clock starts at the *intended* send time
//! (coordinated-omission-corrected, like the load generator).
//!
//! Three phases:
//!
//! 1. **Calibrate** — time one victim job and one noisy job (best of
//!    three) on an idle single-thread engine; the offered rates are
//!    derived from these so the scenario lands at the same operating
//!    point on any host: victims together offer `victim_util` of one
//!    worker's capacity, the noisy tenant offers `noisy_util` times the
//!    capacity left over — an overload by construction.
//! 2. **Baseline** — victims only, each submitting evenly staggered
//!    jobs. Their pooled p99 is the isolated reference.
//! 3. **Mixed** — same victim schedule plus the noisy flood. The lane
//!    quota sheds most of the flood at admission; DRR serves what is
//!    admitted without letting it push a victim's next job more than one
//!    rotation away.
//!
//! Isolation holds when the victims' pooled p99 in the mixed phase is
//! within `--tolerance` (default 10%) of baseline while the noisy lane
//! visibly sheds. `--strict` turns those two checks into the exit code.
//!
//! Usage: `multitenant [--out PATH] [--tenants N] [--workers N]
//! [--quota N] [--duration-ms N] [--victim-util F] [--noisy-util F]
//! [--victim-edges N] [--noisy-edges N] [--victim-iters N]
//! [--noisy-iters N] [--tolerance F] [--strict]` (defaults:
//! BENCH_multitenant.json, 8, host parallelism, 4, 15000, 0.4, 1.5,
//! 200000, 5000, 10, 5, 0.10).

use graphmine_algos::{run_algorithm_digest, AlgorithmKind, SuiteConfig, Workload};
use graphmine_engine::ExecutionConfig;
use graphmine_shard::{DrrQueue, TenantRegistry};
use serde_json::{json, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Args {
    out: std::path::PathBuf,
    tenants: usize,
    workers: usize,
    quota: usize,
    duration_ms: u64,
    victim_util: f64,
    noisy_util: f64,
    victim_edges: usize,
    noisy_edges: usize,
    victim_iters: usize,
    noisy_iters: usize,
    tolerance: f64,
    strict: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        out: std::path::PathBuf::from("BENCH_multitenant.json"),
        tenants: 8,
        workers: 0, // 0 = host parallelism
        quota: 4,
        duration_ms: 15_000,
        victim_util: 0.4,
        noisy_util: 1.5,
        victim_edges: 200_000,
        noisy_edges: 5_000,
        victim_iters: 10,
        noisy_iters: 5,
        tolerance: 0.10,
        strict: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        fn num<T: std::str::FromStr>(v: String, name: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("unparseable {name}"))
        }
        match flag.as_str() {
            "--out" => out.out = std::path::PathBuf::from(value("--out")?),
            "--tenants" => out.tenants = num(value("--tenants")?, "--tenants")?,
            "--workers" => out.workers = num(value("--workers")?, "--workers")?,
            "--quota" => out.quota = num(value("--quota")?, "--quota")?,
            "--duration-ms" => out.duration_ms = num(value("--duration-ms")?, "--duration-ms")?,
            "--victim-util" => out.victim_util = num(value("--victim-util")?, "--victim-util")?,
            "--noisy-util" => out.noisy_util = num(value("--noisy-util")?, "--noisy-util")?,
            "--victim-edges" => out.victim_edges = num(value("--victim-edges")?, "--victim-edges")?,
            "--noisy-edges" => out.noisy_edges = num(value("--noisy-edges")?, "--noisy-edges")?,
            "--victim-iters" => out.victim_iters = num(value("--victim-iters")?, "--victim-iters")?,
            "--noisy-iters" => out.noisy_iters = num(value("--noisy-iters")?, "--noisy-iters")?,
            "--tolerance" => out.tolerance = num(value("--tolerance")?, "--tolerance")?,
            "--strict" => out.strict = true,
            other => return Err(format!("unknown multitenant flag `{other}`")),
        }
    }
    if out.tenants < 2 {
        return Err("--tenants needs at least 2 (one noisy, one victim)".to_string());
    }
    if !(out.victim_util > 0.0 && out.victim_util < 1.0) {
        return Err("--victim-util must be in (0, 1)".to_string());
    }
    if out.noisy_util <= 0.0 {
        return Err("--noisy-util must be > 0".to_string());
    }
    if out.quota == 0 {
        return Err("--quota must be ≥ 1".to_string());
    }
    Ok(out)
}

/// One admitted job: whose lane it came through and when it was *meant*
/// to be sent — the open-loop latency clock.
#[derive(Clone, Copy)]
struct Job {
    tenant: usize,
    intended_s: f64,
}

fn suite_config(iters: usize) -> SuiteConfig {
    SuiteConfig {
        exec: ExecutionConfig::with_max_iterations(iters),
        ..SuiteConfig::default()
    }
}

/// Best-of-3 service time of one job on an idle single-thread engine.
fn calibrate(workload: &Workload, config: &SuiteConfig) -> f64 {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("1-thread pool");
    pool.install(|| {
        let _ = run_algorithm_digest(AlgorithmKind::Pr, workload, config)
            .unwrap_or_else(|e| panic!("calibration job: {e}"));
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let _ = run_algorithm_digest(AlgorithmKind::Pr, workload, config);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    })
}

/// What one phase observed, indexed by tenant lane.
struct PhaseResult {
    /// CO-corrected latency (ms) of each completed job.
    latencies_ms: Vec<Vec<f64>>,
    /// Jobs the open-loop schedule offered (admitted + shed).
    offered: Vec<u64>,
    /// Jobs refused at admission because the lane was at quota.
    shed: Vec<u64>,
}

/// Per-tenant completed-job latencies, shared across worker threads.
type LatencySink = Arc<Vec<Mutex<Vec<f64>>>>;

/// Everything a phase run needs besides the per-tenant rates.
struct Scenario {
    registry: TenantRegistry,
    quota: usize,
    workers: usize,
    duration: Duration,
    victim: Arc<Workload>,
    noisy: Arc<Workload>,
    victim_cfg: SuiteConfig,
    noisy_cfg: SuiteConfig,
}

impl Scenario {
    /// Run one phase: per-tenant open-loop submitters at `rates` jobs/sec
    /// (0 = tenant sits out) against `workers` threads draining one shared
    /// DRR queue. Each worker runs jobs on its own single-thread engine
    /// pool so service times do not drift with worker concurrency.
    fn run_phase(&self, rates: &[f64]) -> PhaseResult {
        let n = self.registry.len();
        let queue: Arc<DrrQueue<Job>> = Arc::new(DrrQueue::new(&self.registry.weights()));
        let latencies: LatencySink = Arc::new((0..n).map(|_| Mutex::new(Vec::new())).collect());
        let offered: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let shed: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let epoch = Instant::now();

        let worker_handles: Vec<_> = (0..self.workers)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let latencies = Arc::clone(&latencies);
                let victim = Arc::clone(&self.victim);
                let noisy = Arc::clone(&self.noisy);
                let victim_cfg = self.victim_cfg.clone();
                let noisy_cfg = self.noisy_cfg.clone();
                std::thread::spawn(move || {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(1)
                        .build()
                        .expect("1-thread pool");
                    pool.install(|| {
                        while let Some(job) = queue.pop() {
                            let (workload, config) = if job.tenant == 0 {
                                (&noisy, &noisy_cfg)
                            } else {
                                (&victim, &victim_cfg)
                            };
                            run_algorithm_digest(AlgorithmKind::Pr, workload, config)
                                .unwrap_or_else(|e| panic!("benchmark job: {e}"));
                            let lat_ms =
                                (epoch.elapsed().as_secs_f64() - job.intended_s).max(0.0) * 1e3;
                            latencies[job.tenant]
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(lat_ms);
                        }
                    })
                })
            })
            .collect();

        let n_active = rates.iter().filter(|&&r| r > 0.0).count().max(1);
        let submitters: Vec<_> = rates
            .iter()
            .enumerate()
            .filter(|&(_, &rate)| rate > 0.0)
            .map(|(tenant, &rate)| {
                let queue = Arc::clone(&queue);
                let offered = Arc::clone(&offered);
                let shed = Arc::clone(&shed);
                let quota = self.quota;
                let horizon_s = self.duration.as_secs_f64();
                // Stagger same-rate tenants evenly across one inter-arrival
                // gap so the open-loop schedule never sends a synchronized
                // burst by construction.
                let phase_s = tenant as f64 / (rate * n_active as f64);
                std::thread::spawn(move || {
                    for i in 0u64.. {
                        let intended_s = phase_s + i as f64 / rate;
                        if intended_s >= horizon_s {
                            break;
                        }
                        let behind = intended_s - epoch.elapsed().as_secs_f64();
                        // Sub-millisecond gaps are submitted back to back;
                        // the intended stamps stay exact either way.
                        if behind > 1e-3 {
                            std::thread::sleep(Duration::from_secs_f64(behind));
                        }
                        offered[tenant].fetch_add(1, Ordering::Relaxed);
                        if queue.lane_len(tenant) >= quota {
                            shed[tenant].fetch_add(1, Ordering::Relaxed);
                        } else {
                            assert!(
                                queue.push(tenant, Job { tenant, intended_s }),
                                "queue closed while submitting"
                            );
                        }
                    }
                })
            })
            .collect();

        for s in submitters {
            s.join().expect("submitter thread");
        }
        queue.close(); // graceful: workers drain the sub-quota backlog
        for w in worker_handles {
            w.join().expect("worker thread");
        }

        PhaseResult {
            latencies_ms: latencies
                .iter()
                .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()).clone())
                .collect(),
            offered: offered.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            shed: shed.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }
}

fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    v
}

fn pct(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Per-tenant report rows plus the victims' pooled sorted latencies.
fn phase_rows(
    registry: &TenantRegistry,
    rates: &[f64],
    phase: &PhaseResult,
) -> (Vec<Value>, Vec<f64>) {
    let mut rows = Vec::new();
    let mut victims_pool = Vec::new();
    for (i, spec) in registry.iter().enumerate() {
        if rates[i] <= 0.0 {
            continue;
        }
        let lat = sorted(phase.latencies_ms[i].clone());
        if i != 0 {
            victims_pool.extend_from_slice(&lat);
        }
        rows.push(json!({
            "tenant": spec.id,
            "rate_per_s": rates[i],
            "offered": phase.offered[i],
            "admitted": phase.offered[i] - phase.shed[i],
            "shed": phase.shed[i],
            "done": lat.len(),
            "p50_ms": pct(&lat, 0.50),
            "p99_ms": pct(&lat, 0.99),
            "max_ms": lat.last().copied().unwrap_or(0.0),
        }));
    }
    (rows, sorted(victims_pool))
}

fn main() -> std::process::ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = if args.workers == 0 {
        host
    } else {
        args.workers
    };
    let duration = Duration::from_millis(args.duration_ms);

    let registry = TenantRegistry::derived(args.tenants, args.quota).expect("derived registry");
    let scenario = Scenario {
        registry,
        quota: args.quota,
        workers,
        duration,
        victim: Arc::new(Workload::powerlaw(args.victim_edges, 2.5, 21)),
        noisy: Arc::new(Workload::powerlaw(args.noisy_edges, 2.5, 22)),
        victim_cfg: suite_config(args.victim_iters),
        noisy_cfg: suite_config(args.noisy_iters),
    };

    // Calibrate, then derive the operating point: victims together fill
    // `victim_util` of one worker's capacity, and the noisy tenant
    // offers `noisy_util` times everything the pool has left — an
    // overload its quota must absorb.
    let victim_svc_s = calibrate(&scenario.victim, &scenario.victim_cfg);
    let noisy_svc_s = calibrate(&scenario.noisy, &scenario.noisy_cfg);
    let n_victims = args.tenants - 1;
    let victim_rate = args.victim_util / victim_svc_s / n_victims as f64;
    let leftover = workers as f64 - args.victim_util;
    let noisy_rate = args.noisy_util * leftover.max(0.1) / noisy_svc_s;
    eprintln!(
        "calibrated: victim job {:.2} ms, noisy job {:.3} ms; \
         {n_victims} victims at {victim_rate:.2}/s each, noisy at {noisy_rate:.0}/s \
         ({workers} workers, quota {})",
        victim_svc_s * 1e3,
        noisy_svc_s * 1e3,
        args.quota
    );

    let mut baseline_rates = vec![victim_rate; args.tenants];
    baseline_rates[0] = 0.0;
    let mut mixed_rates = baseline_rates.clone();
    mixed_rates[0] = noisy_rate;

    eprintln!("baseline phase: victims only, {} ms", args.duration_ms);
    let baseline = scenario.run_phase(&baseline_rates);
    eprintln!(
        "mixed phase: victims + noisy flood, {} ms",
        args.duration_ms
    );
    let mixed = scenario.run_phase(&mixed_rates);

    let (base_rows, base_victims) = phase_rows(&scenario.registry, &baseline_rates, &baseline);
    let (mixed_rows, mixed_victims) = phase_rows(&scenario.registry, &mixed_rates, &mixed);
    let base_p99 = pct(&base_victims, 0.99);
    let mixed_p99 = pct(&mixed_victims, 0.99);
    let ratio = if base_p99 > 0.0 {
        mixed_p99 / base_p99
    } else {
        0.0
    };
    let within = ratio > 0.0 && ratio <= 1.0 + args.tolerance;
    let noisy_shed = mixed.shed[0];
    let throttled = noisy_shed > 0;

    let noisy_lat = sorted(mixed.latencies_ms[0].clone());
    let noisy_offered = mixed.offered[0];
    let doc = json!({
        "schema": "graphmine/bench-multitenant/v1",
        "config": {
            "tenants": args.tenants,
            "victims": n_victims,
            "workers": workers,
            "host_parallelism": host,
            "quota_max_queued": args.quota,
            "drr_weights": scenario.registry.weights(),
            "duration_ms": args.duration_ms,
            "victim_util": args.victim_util,
            "noisy_util": args.noisy_util,
            "victim_workload": {
                "powerlaw_edges": args.victim_edges,
                "max_iterations": args.victim_iters,
                "service_ms": victim_svc_s * 1e3,
                "rate_per_s_each": victim_rate,
            },
            "noisy_workload": {
                "powerlaw_edges": args.noisy_edges,
                "max_iterations": args.noisy_iters,
                "service_ms": noisy_svc_s * 1e3,
                "rate_per_s": noisy_rate,
            },
            "tolerance": args.tolerance,
        },
        "baseline": {
            "per_tenant": base_rows,
            "victims_done": base_victims.len(),
            "victims_p50_ms": pct(&base_victims, 0.50),
            "victims_p99_ms": base_p99,
        },
        "mixed": {
            "per_tenant": mixed_rows,
            "victims_done": mixed_victims.len(),
            "victims_p50_ms": pct(&mixed_victims, 0.50),
            "victims_p99_ms": mixed_p99,
            "noisy": {
                "offered": noisy_offered,
                "admitted": noisy_offered - noisy_shed,
                "shed": noisy_shed,
                "shed_fraction": noisy_shed as f64 / noisy_offered.max(1) as f64,
                "done": noisy_lat.len(),
                "p99_ms": pct(&noisy_lat, 0.99),
            },
        },
        "isolation": {
            "victims_p99_baseline_ms": base_p99,
            "victims_p99_mixed_ms": mixed_p99,
            "victims_p99_ratio": ratio,
            "within_tolerance": within,
            "noisy_quota_throttled": throttled,
        },
    });
    let text = serde_json::to_string_pretty(&doc).expect("static JSON serializes");
    if let Err(e) = std::fs::write(&args.out, text) {
        eprintln!("cannot write {}: {e}", args.out.display());
        return std::process::ExitCode::FAILURE;
    }

    println!(
        "victims p99: {base_p99:.2} ms isolated -> {mixed_p99:.2} ms under flood \
         (ratio {ratio:.3}); noisy shed {noisy_shed}/{noisy_offered} \
         ({:.0}%); wrote {}",
        100.0 * noisy_shed as f64 / noisy_offered.max(1) as f64,
        args.out.display()
    );
    if args.strict && !(within && throttled) {
        eprintln!(
            "strict check failed: within_tolerance={within} noisy_quota_throttled={throttled}"
        );
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
