//! One Criterion bench group per table/figure of the paper.
//!
//! Behavior figures (1–13) bench the underlying `<algorithm, graph>` runs
//! that produce them; ensemble figures (14–23, Table 3) bench the analysis
//! over the quick-profile run database. Regenerating the printed
//! tables/series themselves is `graphmine <fig>`; these benches measure the
//! machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use graphmine_algos::{run_algorithm, AlgorithmKind, SuiteConfig, Workload};
use graphmine_bench::quick_db;
use graphmine_core::{
    best_coverage_ensemble, best_spread_ensemble, frequency_in_top_ensembles,
    limited_algorithm_pool, top_k_ensembles, BehaviorVector, CoverageSampler, Objective,
    WorkMetric,
};
use graphmine_engine::ExecutionConfig;
use graphmine_harness::{render_figure, ScaleProfile};
use std::time::Duration;

fn small_cfg() -> SuiteConfig {
    SuiteConfig {
        exec: ExecutionConfig::with_max_iterations(40),
        ..SuiteConfig::default()
    }
}

fn tune(c: &mut Criterion) -> &mut Criterion {
    c
}

/// Bench one algorithm on its domain workload (behavior figures 1–12).
fn bench_algorithm(c: &mut Criterion, group: &str, alg: AlgorithmKind, workload: &Workload) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let cfg = small_cfg();
    g.bench_function(alg.abbrev(), |b| {
        b.iter(|| run_algorithm(alg, workload, &cfg).expect("domain-consistent"))
    });
    g.finish();
}

fn behavior_figures(c: &mut Criterion) {
    let pl = Workload::powerlaw(4_000, 2.5, 11);
    let ratings = Workload::ratings(2_000, 2.5, 12);
    let matrix = Workload::matrix(300, 13);
    let grid = Workload::grid(16, 14);
    let mrf = Workload::mrf(1056, 15);

    // Figure 1: GA active-fraction runs.
    for alg in [
        AlgorithmKind::Cc,
        AlgorithmKind::Kc,
        AlgorithmKind::Tc,
        AlgorithmKind::Sssp,
        AlgorithmKind::Pr,
        AlgorithmKind::Ad,
    ] {
        bench_algorithm(c, "fig01_ga_active", alg, &pl);
    }
    // Figures 2–4: KC / TC / PR metric values.
    bench_algorithm(c, "fig02_kc_metrics", AlgorithmKind::Kc, &pl);
    bench_algorithm(c, "fig03_tc_metrics", AlgorithmKind::Tc, &pl);
    bench_algorithm(c, "fig04_pr_metrics", AlgorithmKind::Pr, &pl);
    // Figures 5–6: KM.
    bench_algorithm(c, "fig05_km_active", AlgorithmKind::Km, &pl);
    bench_algorithm(c, "fig06_km_metrics", AlgorithmKind::Km, &pl);
    // Figures 7–8: ALS.
    bench_algorithm(c, "fig07_als_active", AlgorithmKind::Als, &ratings);
    bench_algorithm(c, "fig08_als_metrics", AlgorithmKind::Als, &ratings);
    // Figures 9–10: SGD / SVD.
    bench_algorithm(c, "fig09_sgd_metrics", AlgorithmKind::Sgd, &ratings);
    bench_algorithm(c, "fig10_svd_metrics", AlgorithmKind::Svd, &ratings);
    // Figure 11: LBP.
    bench_algorithm(c, "fig11_lbp_active", AlgorithmKind::Lbp, &grid);
    // Figure 12: Jacobi / LBP / DD.
    bench_algorithm(c, "fig12_solver_metrics", AlgorithmKind::Jacobi, &matrix);
    bench_algorithm(c, "fig12_solver_metrics", AlgorithmKind::Lbp, &grid);
    bench_algorithm(c, "fig12_solver_metrics", AlgorithmKind::Dd, &mrf);
}

fn pool(db: &graphmine_core::RunDb) -> Vec<BehaviorVector> {
    let behaviors = db.behaviors(WorkMetric::LogicalOps);
    let mut vs = Vec::new();
    for alg in AlgorithmKind::ENSEMBLE {
        for i in db.indices_of_algorithm(alg.abbrev()) {
            vs.push(behaviors[i]);
        }
    }
    vs
}

fn ensemble_figures(c: &mut Criterion) {
    let db = quick_db();
    let vs = pool(db);
    let sampler = CoverageSampler::new(10_000, 1);

    // Figure 13: normalization over the whole database.
    {
        let mut g = tune(c).benchmark_group("fig13_all_algos");
        g.sample_size(20);
        g.bench_function("normalize_db", |b| {
            b.iter(|| db.behaviors(WorkMetric::LogicalOps))
        });
        g.finish();
    }
    // Figures 14/16/18 + Table 3: best-spread search at representative sizes.
    {
        let mut g = tune(c).benchmark_group("fig14_spread_single_algo");
        g.sample_size(10);
        let cc: Vec<BehaviorVector> = {
            let behaviors = db.behaviors(WorkMetric::LogicalOps);
            db.indices_of_algorithm("CC")
                .into_iter()
                .map(|i| behaviors[i])
                .collect()
        };
        g.bench_function("best_spread_n5_pool20", |b| {
            b.iter(|| best_spread_ensemble(&cc, 5))
        });
        g.finish();
    }
    {
        let mut g = tune(c).benchmark_group("fig15_cov_single_algo");
        g.sample_size(10);
        let behaviors = db.behaviors(WorkMetric::LogicalOps);
        let cc: Vec<BehaviorVector> = db
            .indices_of_algorithm("CC")
            .into_iter()
            .map(|i| behaviors[i])
            .collect();
        g.bench_function("best_coverage_n5_pool20", |b| {
            b.iter(|| best_coverage_ensemble(&cc, 5, &sampler))
        });
        g.finish();
    }
    {
        let mut g = tune(c).benchmark_group("fig16_spread_single_graph");
        g.sample_size(10);
        let eleven: Vec<BehaviorVector> = vs.iter().step_by(20).copied().collect();
        g.bench_function("best_spread_n5_pool11", |b| {
            b.iter(|| best_spread_ensemble(&eleven, 5))
        });
        g.finish();
    }
    {
        let mut g = tune(c).benchmark_group("fig17_cov_single_graph");
        g.sample_size(10);
        let eleven: Vec<BehaviorVector> = vs.iter().step_by(20).copied().collect();
        g.bench_function("best_coverage_n5_pool11", |b| {
            b.iter(|| best_coverage_ensemble(&eleven, 5, &sampler))
        });
        g.finish();
    }
    {
        let mut g = tune(c).benchmark_group("fig18_spread_unrestricted");
        g.sample_size(10).measurement_time(Duration::from_secs(4));
        g.bench_function("best_spread_n10_pool220", |b| {
            b.iter(|| best_spread_ensemble(&vs, 10))
        });
        g.finish();
    }
    {
        let mut g = tune(c).benchmark_group("fig19_cov_unrestricted");
        g.sample_size(10).measurement_time(Duration::from_secs(4));
        g.bench_function("best_coverage_n10_pool220", |b| {
            b.iter(|| best_coverage_ensemble(&vs, 10, &sampler))
        });
        g.finish();
    }
    // Figures 20/21: beam-searched top-k + frequency analysis.
    {
        let labels: Vec<String> = AlgorithmKind::ENSEMBLE
            .iter()
            .flat_map(|a| std::iter::repeat_n(a.abbrev().to_string(), 20))
            .collect();
        let small_sampler = CoverageSampler::new(2_000, 2);
        let mut g = tune(c).benchmark_group("fig20_freq_spread");
        g.sample_size(10).measurement_time(Duration::from_secs(4));
        g.bench_function("top20_size4", |b| {
            b.iter(|| {
                let top = top_k_ensembles(&vs, 4, 20, Objective::Spread, &small_sampler);
                frequency_in_top_ensembles(&top, &labels)
            })
        });
        g.finish();
        let mut g = tune(c).benchmark_group("fig21_freq_coverage");
        g.sample_size(10).measurement_time(Duration::from_secs(6));
        g.bench_function("top10_size3", |b| {
            b.iter(|| {
                let top = top_k_ensembles(&vs, 3, 10, Objective::Coverage, &small_sampler);
                frequency_in_top_ensembles(&top, &labels)
            })
        });
        g.finish();
    }
    // Figures 22/23: limited-complexity pools.
    {
        let behaviors = db.behaviors(WorkMetric::LogicalOps);
        let limited = limited_algorithm_pool(db, &["KM", "ALS", "TC"]);
        let lvs: Vec<BehaviorVector> = limited.iter().map(|&i| behaviors[i]).collect();
        let mut g = tune(c).benchmark_group("fig22_spread_limited");
        g.sample_size(10);
        g.bench_function("best_spread_n10_pool60", |b| {
            b.iter(|| best_spread_ensemble(&lvs, 10))
        });
        g.finish();
        let mut g = tune(c).benchmark_group("fig23_cov_limited");
        g.sample_size(10);
        g.bench_function("best_coverage_n10_pool60", |b| {
            b.iter(|| best_coverage_ensemble(&lvs, 10, &sampler))
        });
        g.finish();
    }
    // Tables 2 and 3: full renderer paths.
    {
        let mut g = tune(c).benchmark_group("table2_matrix");
        g.sample_size(20);
        g.bench_function("render", |b| {
            b.iter(|| {
                render_figure("table2", db, ScaleProfile::Quick, WorkMetric::LogicalOps)
                    .expect("renders")
            })
        });
        g.finish();
    }
    {
        let mut g = tune(c).benchmark_group("table3_best_members");
        g.sample_size(10).measurement_time(Duration::from_secs(6));
        g.bench_function("best_spread_n20_pool220", |b| {
            b.iter(|| best_spread_ensemble(&vs, 20))
        });
        g.finish();
    }
}

criterion_group!(benches, behavior_figures, ensemble_figures);
criterion_main!(benches);
