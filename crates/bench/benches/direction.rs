//! Direction-optimizing scatter benchmarks: forced-push vs forced-pull vs
//! the cost-model `Auto` across a frontier-density sweep, on a scale-free
//! graph (natural and degree-reordered vertex order) and a 2D grid.
//!
//! The expected shape: pull wins when the frontier is dense (one pass over
//! every in-slot beats scattering deg_out(F) messages once `3·deg_out(F)`
//! exceeds the total in-slots), push wins when the frontier is sparse (a
//! trickle of active vertices should not pay a full-graph gather), and
//! `Auto` tracks the better of the two at every density. Degree reordering
//! packs the hubs into the first chunks, tightening the accumulator
//! working set on the power-law graph.

use criterion::{criterion_group, criterion_main, Criterion};
use graphmine_engine::{
    ActiveInit, ApplyInfo, DirectionMode, EdgeSet, ExecutionConfig, NoGlobal, SyncEngine,
    VertexProgram,
};
use graphmine_gen::{powerlaw_graph, PowerLawConfig};
use graphmine_graph::{EdgeId, Graph, GraphBuilder, VertexId};
use std::time::Duration;

/// Min-flood probe with a configurable seed set and an order-insensitive
/// (integer min) combiner, so every direction mode is admissible. Seeded
/// vertices flood hop counts for a fixed iteration budget; the starting
/// seed fraction controls the frontier density the engine sees.
struct SeededFlood {
    seeds: Vec<VertexId>,
    iterations: usize,
}

impl VertexProgram for SeededFlood {
    type State = u32;
    type EdgeData = ();
    type Accum = ();
    type Message = u32;
    type Global = NoGlobal;

    fn gather_edges(&self) -> EdgeSet {
        EdgeSet::None
    }
    fn scatter_edges(&self) -> EdgeSet {
        EdgeSet::Out
    }
    fn initial_active(&self) -> ActiveInit {
        ActiveInit::Vertices(self.seeds.clone())
    }
    fn apply(
        &self,
        _v: VertexId,
        state: &mut u32,
        _acc: Option<()>,
        msg: Option<&u32>,
        _g: &NoGlobal,
        info: &mut ApplyInfo,
    ) {
        info.ops += 1;
        match msg {
            Some(&m) if m < *state => *state = m,
            None => *state = 0,
            _ => {}
        }
    }
    fn scatter(
        &self,
        _graph: &Graph,
        _v: VertexId,
        _e: EdgeId,
        _nbr: VertexId,
        state: &u32,
        nbr_state: &u32,
        _edge: &(),
        _g: &NoGlobal,
    ) -> Option<u32> {
        (*state != u32::MAX && state.saturating_add(1) < *nbr_state).then(|| state + 1)
    }
    fn combine(&self, into: &mut u32, from: u32) {
        *into = (*into).min(from);
    }
    fn combine_commutative(&self) -> bool {
        true
    }
    fn should_halt(&self, iter: usize, _s: &[u32], _g: &NoGlobal) -> bool {
        iter + 1 >= self.iterations
    }
}

/// Evenly spaced seed set covering `permille`/1000 of the vertices.
fn seeds(n: usize, permille: usize) -> Vec<VertexId> {
    let count = (n * permille / 1000).max(1);
    let stride = (n / count).max(1);
    (0..n)
        .step_by(stride)
        .take(count)
        .map(|v| v as VertexId)
        .collect()
}

/// Square grid graph (4-neighborhood), the paper's LBP topology without
/// the MRF payload.
fn grid_graph(side: usize) -> Graph {
    let n = side * side;
    let mut b = GraphBuilder::undirected(n);
    for r in 0..side {
        for c in 0..side {
            let v = (r * side + c) as u32;
            if c + 1 < side {
                b.push_edge(v, v + 1);
            }
            if r + 1 < side {
                b.push_edge(v, v + side as u32);
            }
        }
    }
    b.build()
}

fn run_flood(graph: &Graph, seed_set: &[VertexId], dir: DirectionMode) {
    let cfg = ExecutionConfig::with_max_iterations(5).with_direction(dir);
    let engine = SyncEngine::new(
        graph,
        SeededFlood {
            seeds: seed_set.to_vec(),
            iterations: 5,
        },
        vec![u32::MAX; graph.num_vertices()],
        vec![(); graph.num_edges()],
    );
    let _ = engine.run(&cfg);
}

fn direction_density_sweep(c: &mut Criterion) {
    let pl = powerlaw_graph(&PowerLawConfig::new(100_000, 2.5, 6));
    let pl_reordered = pl.reordered_by_degree();
    let grid = grid_graph(300);

    let mut g = c.benchmark_group("direction");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (gname, graph) in [
        ("powerlaw", &pl),
        ("powerlaw_reordered", &pl_reordered),
        ("grid", &grid),
    ] {
        let n = graph.num_vertices();
        // Seed fraction sweep: 0.1%, 10%, 100% of vertices.
        for permille in [1usize, 100, 1000] {
            let seed_set = seeds(n, permille);
            for (dname, dir) in [
                ("push", DirectionMode::Push),
                ("pull", DirectionMode::Pull),
                ("auto", DirectionMode::Auto),
            ] {
                g.bench_function(format!("{gname}/f{permille}/{dname}"), |b| {
                    b.iter(|| run_flood(graph, &seed_set, dir))
                });
            }
        }
    }
    g.finish();
}

criterion_group!(benches, direction_density_sweep);
criterion_main!(benches);
