//! Store open-vs-rebuild benchmarks: the number the store exists for.
//!
//! A cold `POST /jobs` on an uncached graph pays full workload generation;
//! the same job against a packed store file pays a header-validated mmap
//! open. These benches pin both sides of that trade — pack throughput
//! (one-time cost), cold open + load (per-miss cost), and the in-memory
//! rebuild it replaces — so EXPERIMENTS.md can quote the ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphmine_algos::Workload;
use graphmine_store::{load_workload, pack_workload, StoredGraph};
use std::path::PathBuf;
use std::time::Duration;

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphmine_bench_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open_vs_rebuild(c: &mut Criterion) {
    let dir = bench_dir("store_open");
    let mut g = c.benchmark_group("store_open_vs_rebuild");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for edges in [10_000usize, 100_000] {
        let workload = Workload::powerlaw(edges, 2.5, 6);
        let path = dir.join(format!("pl_{edges}.gmg"));
        pack_workload(&path, &workload, "bench", 6).unwrap();
        g.bench_with_input(BenchmarkId::new("rebuild", edges), &edges, |b, &edges| {
            b.iter(|| Workload::powerlaw(edges, 2.5, 6))
        });
        g.bench_with_input(BenchmarkId::new("mmap_load", edges), &path, |b, path| {
            b.iter(|| {
                let stored = StoredGraph::open(path).unwrap();
                load_workload(&stored).unwrap()
            })
        });
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn pack_throughput(c: &mut Criterion) {
    let dir = bench_dir("store_pack");
    let workload = Workload::powerlaw(100_000, 2.5, 6);
    let path = dir.join("pack.gmg");
    let mut g = c.benchmark_group("store_pack");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    g.bench_function("pack_100k_edges", |b| {
        b.iter(|| pack_workload(&path, &workload, "bench", 6).unwrap())
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn verify_cost(c: &mut Criterion) {
    // The full checksum pass pages in the whole file — this is what ingest
    // pays at finalize, and what cold open deliberately skips.
    let dir = bench_dir("store_verify");
    let workload = Workload::powerlaw(100_000, 2.5, 6);
    let path = dir.join("verify.gmg");
    pack_workload(&path, &workload, "bench", 6).unwrap();
    let mut g = c.benchmark_group("store_verify");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    g.bench_function("verify_100k_edges", |b| {
        b.iter(|| StoredGraph::open(&path).unwrap().verify().unwrap())
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, open_vs_rebuild, pack_throughput, verify_cost);
criterion_main!(benches);
