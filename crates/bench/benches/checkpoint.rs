//! Robustness-cost benchmarks: what durability charges the hot path.
//!
//! Two prices are measured — engine checkpointing as a function of the
//! checkpoint interval (EXPERIMENTS.md "checkpoint overhead vs interval"),
//! and the service job journal's per-event append. Both features are
//! opt-in; the baselines here are the no-op configurations they must not
//! perturb.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphmine_algos::cc::ConnectedComponents;
use graphmine_engine::{CheckpointPolicy, ExecutionConfig, SyncEngine};
use graphmine_gen::{powerlaw_graph, PowerLawConfig};
use graphmine_service::{journal::JournalEvent, JobRequest, Journal};
use std::path::PathBuf;
use std::time::Duration;

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphmine_bench_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Connected components to convergence, checkpointing every `every`
/// iterations (0 = checkpointing disabled). CC state is one u32 per
/// vertex, so the serialized image is dominated by the state and message
/// vectors — the representative cost for every algorithm in the suite.
fn run_cc(graph: &graphmine_graph::Graph, every: usize, dir: &PathBuf) {
    let labels: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    let engine = SyncEngine::new(
        graph,
        ConnectedComponents,
        labels,
        vec![(); graph.num_edges()],
    );
    let mut cfg = ExecutionConfig::with_max_iterations(100);
    if every > 0 {
        cfg = cfg.with_checkpoint(CheckpointPolicy::new(every, dir, format!("bench-{every}")));
    }
    let _ = engine.run_resumable(&cfg);
}

fn checkpoint_overhead_vs_interval(c: &mut Criterion) {
    let graph = powerlaw_graph(&PowerLawConfig::new(100_000, 2.5, 6));
    let dir = bench_dir("ckpt");
    let mut g = c.benchmark_group("checkpoint_overhead");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    g.bench_function("baseline_no_checkpoint", |b| {
        b.iter(|| run_cc(&graph, 0, &dir))
    });
    for every in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("every", every), &every, |b, &every| {
            b.iter(|| run_cc(&graph, every, &dir))
        });
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn journal_append_throughput(c: &mut Criterion) {
    let dir = bench_dir("journal");
    let path = dir.join("bench.journal");
    let journal = Journal::open(&path).unwrap();
    let request = JobRequest {
        algorithm: "CC".to_string(),
        graph: None,
        size: 10_000,
        seed: 1,
        alpha: None,
        profile: None,
        max_iterations: None,
        timeout_ms: None,
        checkpoint_every: None,
        direction: None,
        reorder: false,
        representation: None,
        segment_bytes: None,
    };
    let mut g = c.benchmark_group("journal_append");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    // The WAL write on the submission path: serialize + append + flush.
    g.bench_function("submitted_event", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            journal
                .append(&JournalEvent::Submitted {
                    id,
                    algorithm: "CC".to_string(),
                    ckpt_tag: format!("job{id}"),
                    attempt: 0,
                    request: request.clone(),
                })
                .unwrap()
        })
    });
    g.bench_function("finished_event", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            journal
                .append(&JournalEvent::Finished {
                    id,
                    outcome: "done".to_string(),
                    record: None,
                })
                .unwrap()
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    checkpoint_overhead_vs_interval,
    journal_append_throughput
);
criterion_main!(benches);
