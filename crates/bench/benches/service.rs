//! Service throughput: jobs/sec through the full TCP + job-queue path,
//! cold graph cache (every job regenerates its workload) vs warm (the LRU
//! serves it). The gap quantifies the cache's win on repetitive benchmark
//! traffic, where workload generation dominates small-job latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphmine_service::{client, Server, ServerHandle, ServiceConfig};
use serde_json::json;
use std::time::Duration;

const JOBS_PER_ITER: u64 = 4;
const GRAPH_EDGES: u64 = 20_000;

fn start_server(cache_bytes: u64) -> ServerHandle {
    Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        http_workers: 4,
        db_path: None,
        cache_bytes,
        default_timeout_ms: 60_000,
        persist_every: 0,
    })
    .expect("bench server failed to bind")
}

fn stop_server(addr: &str, handle: ServerHandle) {
    let (status, _) = client::request(addr, "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    handle.wait().expect("drain");
}

/// Submit a batch of PR jobs on one graph spec and wait for each; with a
/// warm cache only the first job ever generates the graph, cold
/// regenerates per job.
fn run_batch(addr: &str, seed_base: u64) {
    let mut ids = Vec::with_capacity(JOBS_PER_ITER as usize);
    for _ in 0..JOBS_PER_ITER {
        let (status, response) = client::request(
            addr,
            "POST",
            "/jobs",
            Some(&json!({
                "algorithm": "PR",
                "size": GRAPH_EDGES,
                "seed": seed_base,
                "max_iterations": 5,
            })),
        )
        .expect("submit");
        assert_eq!(status, 202, "submission failed: {response}");
        ids.push(response["id"].as_u64().unwrap());
    }
    for id in ids {
        let terminal =
            client::wait_for_job(addr, id, Duration::from_secs(60)).expect("job stalled");
        assert_eq!(terminal["state"], "done", "job {id}: {terminal}");
    }
}

fn bench_service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(20));
    group.throughput(Throughput::Elements(JOBS_PER_ITER));

    // Warm: generous budget, every iteration reuses one resident graph
    // (primed once before measurement).
    group.bench_function(BenchmarkId::new("warm_cache", GRAPH_EDGES), |b| {
        let handle = start_server(256 * 1024 * 1024);
        let addr = handle.addr().to_string();
        run_batch(&addr, 42); // prime the cache
        b.iter(|| run_batch(&addr, 42));
        stop_server(&addr, handle);
    });

    // Cold: zero budget disables the cache, so every job pays full graph
    // generation. Identical traffic otherwise.
    group.bench_function(BenchmarkId::new("cold_cache", GRAPH_EDGES), |b| {
        let handle = start_server(0);
        let addr = handle.addr().to_string();
        b.iter(|| run_batch(&addr, 42));
        stop_server(&addr, handle);
    });

    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
