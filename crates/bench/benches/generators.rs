//! Generator benchmarks: the synthetic workload builders behind Table 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphmine_gen::{
    grid_graph, matrix_graph, mrf_graph, powerlaw_graph, BipartiteConfig, GridMrf, MrfConfig,
    PowerLawConfig, RatingGraph,
};
use std::time::Duration;

fn powerlaw(c: &mut Criterion) {
    let mut g = c.benchmark_group("gen_powerlaw");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for nedges in [10_000usize, 100_000] {
        for alpha in [2.0f64, 3.0] {
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("m{nedges}_a{alpha}")),
                &(nedges, alpha),
                |b, &(m, a)| b.iter(|| powerlaw_graph(&PowerLawConfig::new(m, a, 1))),
            );
        }
    }
    g.finish();
}

fn bipartite(c: &mut Criterion) {
    let mut g = c.benchmark_group("gen_bipartite");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for nedges in [10_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(nedges), &nedges, |b, &m| {
            b.iter(|| RatingGraph::generate(&BipartiteConfig::new(m, 2.5, 1)))
        });
    }
    g.finish();
}

fn structured(c: &mut Criterion) {
    let mut g = c.benchmark_group("gen_structured");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("matrix_4000x8", |b| b.iter(|| matrix_graph(4_000, 8, 1)));
    g.bench_function("grid_64", |b| b.iter(|| grid_graph(64)));
    g.bench_function("grid_mrf_64", |b| b.iter(|| GridMrf::generate(64, 2, 1)));
    g.bench_function("mrf_1560", |b| {
        b.iter(|| mrf_graph(&MrfConfig::new(1560, 1)))
    });
    g.finish();
}

criterion_group!(benches, powerlaw, bipartite, structured);
criterion_main!(benches);
