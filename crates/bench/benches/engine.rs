//! Engine micro-benchmarks and ablations: synchronous GAS iteration
//! throughput, parallel vs sequential execution, and apply-timing overhead
//! (the ablations DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphmine_engine::{
    ActiveInit, ApplyInfo, EdgeSet, ExecutionConfig, FrontierMode, NoGlobal, SyncEngine,
    VertexProgram,
};
use graphmine_gen::{powerlaw_graph, PowerLawConfig};
use graphmine_graph::{EdgeId, Graph, GraphBuilder, VertexId};
use std::time::Duration;

/// Gather-heavy probe: sums neighbor values for a fixed iteration count.
struct SumNeighbors {
    iterations: usize,
}

impl VertexProgram for SumNeighbors {
    type State = f64;
    type EdgeData = ();
    type Accum = f64;
    type Message = ();
    type Global = NoGlobal;

    fn gather_edges(&self) -> EdgeSet {
        EdgeSet::Out
    }
    fn scatter_edges(&self) -> EdgeSet {
        EdgeSet::None
    }
    fn always_active(&self) -> bool {
        true
    }
    fn gather(
        &self,
        _g: &Graph,
        _v: VertexId,
        _e: EdgeId,
        _n: VertexId,
        _vs: &f64,
        ns: &f64,
        _ed: &(),
        _gl: &NoGlobal,
    ) -> f64 {
        *ns
    }
    fn merge(&self, a: &mut f64, b: f64) {
        *a += b;
    }
    fn apply(
        &self,
        _v: VertexId,
        state: &mut f64,
        acc: Option<f64>,
        _m: Option<&()>,
        _g: &NoGlobal,
        info: &mut ApplyInfo,
    ) {
        info.ops += 1;
        *state = acc.unwrap_or(0.0) * 0.5;
    }
    fn should_halt(&self, iter: usize, _s: &[f64], _g: &NoGlobal) -> bool {
        iter + 1 >= self.iterations
    }
}

fn run_probe(graph: &Graph, cfg: &ExecutionConfig) {
    let engine = SyncEngine::new(
        graph,
        SumNeighbors { iterations: 5 },
        vec![1.0; graph.num_vertices()],
        vec![(); graph.num_edges()],
    );
    let _ = engine.run(cfg);
}

fn engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_iteration_throughput");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for nedges in [10_000usize, 50_000, 200_000] {
        let graph = powerlaw_graph(&PowerLawConfig::new(nedges, 2.5, 1));
        g.bench_with_input(BenchmarkId::from_parameter(nedges), &graph, |b, graph| {
            b.iter(|| run_probe(graph, &ExecutionConfig::default()))
        });
    }
    g.finish();
}

fn ablation_parallel_vs_sequential(c: &mut Criterion) {
    let graph = powerlaw_graph(&PowerLawConfig::new(100_000, 2.5, 2));
    let mut g = c.benchmark_group("ablation_parallelism");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, sequential) in [("parallel", false), ("sequential", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = ExecutionConfig {
                    sequential,
                    ..ExecutionConfig::default()
                };
                run_probe(&graph, &cfg)
            })
        });
    }
    g.finish();
}

fn ablation_apply_timing_overhead(c: &mut Criterion) {
    let graph = powerlaw_graph(&PowerLawConfig::new(100_000, 2.5, 3));
    let mut g = c.benchmark_group("ablation_apply_timing");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, skip) in [("timed", false), ("untimed", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = ExecutionConfig {
                    skip_apply_timing: skip,
                    ..ExecutionConfig::default()
                };
                run_probe(&graph, &cfg)
            })
        });
    }
    g.finish();
}

fn ablation_executors(c: &mut Criterion) {
    // DESIGN ablation: the three execution models on the same vertex
    // program (Connected Components) and graph — synchronous vertex-centric
    // (the paper's mode), asynchronous FIFO (GraphLab's other mode), and
    // edge-centric streaming (X-Stream).
    use graphmine_algos::cc::ConnectedComponents;
    use graphmine_engine::{
        async_run, edge_centric_run, AsyncConfig, EdgeCentricConfig, NoGlobal, SyncEngine,
    };
    let graph = powerlaw_graph(&PowerLawConfig::new(100_000, 2.5, 4));
    let labels: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    let edges = vec![(); graph.num_edges()];
    let mut g = c.benchmark_group("ablation_executors");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    g.bench_function("sync_vertex_centric", |b| {
        b.iter(|| {
            SyncEngine::new(&graph, ConnectedComponents, labels.clone(), edges.clone())
                .run(&ExecutionConfig::default())
        })
    });
    g.bench_function("async_fifo", |b| {
        b.iter(|| {
            async_run(
                &graph,
                &ConnectedComponents,
                labels.clone(),
                edges.clone(),
                NoGlobal,
                &AsyncConfig::default(),
            )
        })
    });
    g.bench_function("edge_centric_stream", |b| {
        b.iter(|| {
            edge_centric_run(
                &graph,
                &ConnectedComponents,
                labels.clone(),
                &edges,
                NoGlobal,
                &EdgeCentricConfig::default(),
            )
        })
    });
    g.finish();
}

/// SSSP-style probe for the frontier benchmarks: hop-count flood from a
/// single source, message-driven activation. On a long path graph the
/// frontier is one vertex per iteration — ≤ 0.01% of vertices — so the
/// engine's per-iteration overhead dominates and the dense-vs-sparse gap is
/// maximal.
struct HopFlood;

impl VertexProgram for HopFlood {
    type State = u32;
    type EdgeData = ();
    type Accum = ();
    type Message = u32;
    type Global = NoGlobal;

    fn gather_edges(&self) -> EdgeSet {
        EdgeSet::None
    }
    fn scatter_edges(&self) -> EdgeSet {
        EdgeSet::Out
    }
    fn initial_active(&self) -> ActiveInit {
        ActiveInit::Vertices(vec![0])
    }
    fn apply(
        &self,
        _v: VertexId,
        state: &mut u32,
        _acc: Option<()>,
        msg: Option<&u32>,
        _g: &NoGlobal,
        info: &mut ApplyInfo,
    ) {
        info.ops += 1;
        if let Some(&m) = msg {
            if m < *state {
                *state = m;
            }
        }
    }
    fn scatter(
        &self,
        _graph: &Graph,
        _v: VertexId,
        _e: EdgeId,
        _nbr: VertexId,
        state: &u32,
        nbr_state: &u32,
        _edge: &(),
        _g: &NoGlobal,
    ) -> Option<u32> {
        (*state != u32::MAX && state.saturating_add(1) < *nbr_state).then(|| state + 1)
    }
    fn combine(&self, into: &mut u32, from: u32) {
        *into = (*into).min(from);
    }
}

fn frontier_modes(c: &mut Criterion) {
    // Sparse workload: 200k-vertex path, 50 iterations of a single-vertex
    // frontier. The seed engine paid O(n) per iteration here; the sparse
    // path pays O(frontier). The ≥2× acceptance bar for this PR lives on
    // this benchmark.
    let n = 200_000usize;
    let mut b = GraphBuilder::undirected(n);
    for v in 0..(n as u32 - 1) {
        b.push_edge(v, v + 1);
    }
    let path_graph = b.build();
    let sssp_states: Vec<u32> = (0..n as u32)
        .map(|v| if v == 0 { 0 } else { u32::MAX })
        .collect();

    let mut g = c.benchmark_group("frontier");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (name, mode) in [
        ("sparse_sssp/dense_path", FrontierMode::Dense),
        ("sparse_sssp/frontier_path", FrontierMode::Adaptive),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = ExecutionConfig::with_max_iterations(50).with_frontier_mode(mode);
                SyncEngine::new(
                    &path_graph,
                    HopFlood,
                    sssp_states.clone(),
                    vec![(); path_graph.num_edges()],
                )
                .run(&cfg)
            })
        });
    }

    // Always-active workload: every iteration is a full sweep, so the
    // adaptive engine must stay on the dense path and show no regression
    // (the ≤5% bar).
    let dense_graph = powerlaw_graph(&PowerLawConfig::new(100_000, 2.5, 5));
    for (name, mode) in [
        ("always_active/dense_path", FrontierMode::Dense),
        ("always_active/frontier_path", FrontierMode::Adaptive),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = ExecutionConfig::default().with_frontier_mode(mode);
                run_probe(&dense_graph, &cfg)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    engine_throughput,
    ablation_parallel_vs_sequential,
    ablation_apply_timing_overhead,
    ablation_executors,
    frontier_modes
);
criterion_main!(benches);
