//! A log-bucketed latency histogram in the HDR-histogram family.
//!
//! Robust latency reporting needs percentiles over the full distribution,
//! not an average ("SoK: The Faults in our Graph Benchmarks" catalogs the
//! averaged-latency failure mode), and it needs them mergeable so that
//! per-thread or per-stage recordings combine without loss. The classic
//! answer is a histogram whose buckets grow geometrically — constant
//! *relative* error across nine orders of magnitude at a few KiB of
//! memory.
//!
//! Bucketing scheme: values below 2^[`SUB_BITS`] get exact unit buckets;
//! every octave `[2^m, 2^(m+1))` above that is split into `2^SUB_BITS`
//! linear sub-buckets, so no recorded value is distorted by more than
//! `2^-SUB_BITS` (≈3.1% at the default precision). Counts are plain
//! `u64`s: merging is bucket-wise addition (associative and commutative),
//! and serde round-trips exactly.
//!
//! The histogram is value-unit agnostic; the service and load generator
//! record **microseconds**.

use serde::{Deserialize, Serialize};
use serde_json::json;

/// Sub-bucket precision: each octave is split into `2^SUB_BITS` linear
/// buckets, bounding relative quantization error by `2^-SUB_BITS`.
pub const SUB_BITS: u32 = 5;

const SUB_COUNT: u64 = 1 << SUB_BITS;

/// The quantiles every latency report quotes, as (label, q) pairs.
pub const REPORT_QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// A mergeable log-bucketed histogram of `u64` values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Bucket counts, indexed by [`bucket_index`]; trailing buckets that
    /// were never touched are simply absent.
    counts: Vec<u64>,
    /// Total recorded values.
    total: u64,
    /// Saturating sum of recorded values (for the mean).
    sum: u64,
    /// Smallest recorded value (`u64::MAX` while empty).
    min: u64,
    /// Largest recorded value.
    max: u64,
}

/// The bucket a value lands in. Values below `2^SUB_BITS` map to exact
/// unit buckets `0..2^SUB_BITS`; larger values map to their octave's
/// linear sub-bucket.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as u64; // ≥ SUB_BITS here
    let octave = msb - u64::from(SUB_BITS);
    let sub = (value >> octave) - SUB_COUNT; // in [0, SUB_COUNT)
    (SUB_COUNT + octave * SUB_COUNT + sub) as usize
}

/// Inclusive lower bound of a bucket (the smallest value mapping to it).
pub fn bucket_low(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_COUNT {
        return index;
    }
    let k = index - SUB_COUNT;
    let octave = k / SUB_COUNT;
    let sub = k % SUB_COUNT;
    (SUB_COUNT + sub) << octave
}

/// Exclusive upper bound of a bucket (one past the largest value in it).
pub fn bucket_high(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_COUNT {
        return index + 1;
    }
    let k = index - SUB_COUNT;
    let octave = k / SUB_COUNT;
    bucket_low(index as usize).saturating_add(1 << octave)
}

impl Default for LogHistogram {
    /// Same as [`LogHistogram::new`] — a derived `Default` would zero the
    /// `min` sentinel and corrupt minimum tracking.
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: Vec::new(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty). Saturates with `sum` on
    /// astronomically large inputs.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the smallest recorded value `v`
    /// such that at least `q · count` recordings are ≤ `v`, linearly
    /// interpolated within its bucket and clamped to the recorded
    /// `[min, max]` — so no quantile ever reports below a smaller recorded
    /// value, and `q1 ≤ q2 ⇒ value(q1) ≤ value(q2)`.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cumulative = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if cumulative + count >= target {
                let low = bucket_low(idx);
                let width = bucket_high(idx) - low;
                // Zero-based position of the target rank within this
                // bucket: the bucket's first sample reports `low`.
                let position = (target - cumulative - 1) as f64 / count as f64;
                let value = low as f64 + position * width as f64;
                return (value.floor() as u64).clamp(self.min, self.max);
            }
            cumulative += count;
        }
        self.max
    }

    /// Merge `other` into `self`: bucket-wise count addition. Associative
    /// and commutative, so per-thread recordings combine in any order.
    pub fn merge(&mut self, other: &LogHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += *theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The recordings in `self` but not in `earlier` — for differencing
    /// two snapshots of a cumulative histogram (e.g. a service's stage
    /// histogram before and after a measurement window). `earlier` must be
    /// a previous snapshot of the same histogram; counts subtract
    /// saturating, and `min`/`max` are re-derived from bucket bounds (the
    /// window's true extremes are not recoverable from snapshots).
    pub fn since(&self, earlier: &LogHistogram) -> LogHistogram {
        let mut counts = self.counts.clone();
        for (mine, theirs) in counts.iter_mut().zip(earlier.counts.iter()) {
            *mine = mine.saturating_sub(*theirs);
        }
        while counts.last() == Some(&0) {
            counts.pop();
        }
        let first = counts.iter().position(|&c| c > 0);
        let (min, max) = match first {
            Some(lo) => (bucket_low(lo), bucket_high(counts.len() - 1) - 1),
            None => (u64::MAX, 0),
        };
        LogHistogram {
            total: counts.iter().sum(),
            sum: self.sum.saturating_sub(earlier.sum),
            counts,
            min,
            max,
        }
    }

    /// JSON summary: count, min/mean/max, and the report quantiles. Values
    /// are emitted under the unit name given (e.g. `"us"` →
    /// `{"p50_us": …}`).
    pub fn summary_json(&self, unit: &str) -> serde_json::Value {
        let mut obj = serde_json::Map::new();
        obj.insert("count".into(), json!(self.count()));
        obj.insert(format!("min_{unit}"), json!(self.min()));
        obj.insert(format!("mean_{unit}"), json!(self.mean()));
        obj.insert(format!("max_{unit}"), json!(self.max()));
        for (label, q) in REPORT_QUANTILES {
            obj.insert(format!("{label}_{unit}"), json!(self.value_at_quantile(q)));
        }
        serde_json::Value::Object(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_get_exact_unit_buckets() {
        for v in 0..SUB_COUNT {
            let idx = bucket_index(v);
            assert_eq!(idx, v as usize);
            assert_eq!(bucket_low(idx), v);
            assert_eq!(bucket_high(idx), v + 1);
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        // Every probed value must satisfy low ≤ v < high for its bucket,
        // and the relative bucket width must stay within 2^-SUB_BITS.
        let mut probes = vec![0u64, 1, 31, 32, 33, 63, 64, 100, 1_000];
        for shift in 6..63 {
            probes.push(1u64 << shift);
            probes.push((1u64 << shift) + 1);
            probes.push((1u64 << shift) - 1);
        }
        probes.push(u64::MAX);
        for &v in &probes {
            let idx = bucket_index(v);
            let (low, high) = (bucket_low(idx), bucket_high(idx));
            assert!(low <= v, "low {low} > value {v}");
            // The topmost bucket's exclusive bound saturates at u64::MAX.
            assert!(
                v < high || high == u64::MAX,
                "value {v} outside [{low}, {high})"
            );
            if v >= SUB_COUNT {
                let width = high.saturating_sub(low);
                assert!(
                    (width as f64) <= (low as f64) / (SUB_COUNT as f64) + 1.0,
                    "bucket [{low}, {high}) too wide for value {v}"
                );
            }
        }
    }

    #[test]
    fn bucket_indices_are_monotone_in_value() {
        let mut probes: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            let base = 1u64 << shift;
            probes.extend([base, base.saturating_add(1), base.saturating_add(base / 2)]);
        }
        probes.sort_unstable();
        let mut last = 0usize;
        for v in probes {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at value {v}");
            last = idx;
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        // 1..=100 recorded once each: p50 ≈ 50, p99 ≈ 99, exact at this
        // scale because values < 2^SUB_BITS*… fall in narrow buckets.
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        let p50 = h.value_at_quantile(0.50);
        let p90 = h.value_at_quantile(0.90);
        let p99 = h.value_at_quantile(0.99);
        // 3.1% relative quantization error bound.
        assert!((47..=53).contains(&p50), "p50 = {p50}");
        assert!((87..=94).contains(&p90), "p90 = {p90}");
        assert!((96..=100).contains(&p99), "p99 = {p99}");
        assert_eq!(h.value_at_quantile(0.0), 1, "q=0 is the minimum");
        assert_eq!(h.value_at_quantile(1.0), 100, "q=1 is the maximum");
    }

    #[test]
    fn single_value_reports_itself_at_every_quantile() {
        let mut h = LogHistogram::new();
        h.record(7_777);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            let v = h.value_at_quantile(q);
            assert_eq!(v, 7_777, "q={q} reported {v}");
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_quantile(0.99), 0);
    }

    #[test]
    fn merge_is_associative_and_matches_direct_recording() {
        let samples: [&[u64]; 3] = [&[1, 5, 900], &[32, 33, 1_000_000], &[2, 2, 2, 7_000]];
        let mut parts: Vec<LogHistogram> = samples
            .iter()
            .map(|vs| {
                let mut h = LogHistogram::new();
                for &v in *vs {
                    h.record(v);
                }
                h
            })
            .collect();
        // (a ⊕ b) ⊕ c
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        // a ⊕ (b ⊕ c)
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // Equal to recording everything into one histogram directly.
        let mut direct = LogHistogram::new();
        for vs in samples {
            for &v in vs {
                direct.record(v);
            }
        }
        assert_eq!(left, direct);
        // Merging an empty histogram is the identity.
        parts[0].merge(&LogHistogram::new());
        let mut a = LogHistogram::new();
        for &v in samples[0] {
            a.record(v);
        }
        assert_eq!(parts[0], a);
    }

    #[test]
    fn since_recovers_a_window() {
        let mut before = LogHistogram::new();
        for v in [10u64, 20, 30] {
            before.record(v);
        }
        let mut after = before.clone();
        for v in [100u64, 200] {
            after.record(v);
        }
        let window = after.since(&before);
        assert_eq!(window.count(), 2);
        // Bucket-derived bounds bracket the window's true extremes.
        assert!(window.min() <= 100, "window min {}", window.min());
        assert!(window.max() >= 200, "window max {}", window.max());
        assert_eq!(after.since(&after), LogHistogram::new());
    }

    #[test]
    fn serde_round_trip_is_exact() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 31, 32, 1_000, 123_456_789, u64::MAX] {
            h.record(v);
        }
        let encoded = serde_json::to_string(&h).unwrap();
        let decoded: LogHistogram = serde_json::from_str(&encoded).unwrap();
        assert_eq!(h, decoded);
        assert_eq!(h.value_at_quantile(0.99), decoded.value_at_quantile(0.99));
    }

    #[test]
    fn summary_json_has_the_report_quantiles() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary_json("us");
        assert_eq!(s["count"], 1000);
        for key in [
            "min_us", "mean_us", "max_us", "p50_us", "p90_us", "p99_us", "p999_us",
        ] {
            assert!(s.get(key).is_some(), "missing {key} in {s}");
        }
        assert!(s["p50_us"].as_u64().unwrap() <= s["p99_us"].as_u64().unwrap());
    }

    proptest! {
        /// Quantiles are monotone in q and never report below a smaller
        /// recorded value (or above a larger one): for any recorded set,
        /// every reported quantile lies in [min, max] and ordering of
        /// quantile points implies ordering of reported values.
        #[test]
        fn quantiles_are_monotone_and_bounded(
            values in proptest::collection::vec(0u64..u64::MAX, 1..200),
            qs in proptest::collection::vec(0.0f64..=1.0, 2..20),
        ) {
            let mut h = LogHistogram::new();
            let mut min = u64::MAX;
            let mut max = 0u64;
            for &v in &values {
                h.record(v);
                min = min.min(v);
                max = max.max(v);
            }
            let mut sorted = qs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut last = 0u64;
            for (i, &q) in sorted.iter().enumerate() {
                let v = h.value_at_quantile(q);
                prop_assert!(v >= min, "quantile {q} reported {v} < min {min}");
                prop_assert!(v <= max, "quantile {q} reported {v} > max {max}");
                if i > 0 {
                    prop_assert!(v >= last, "quantile {q} reported {v} < previous {last}");
                }
                last = v;
            }
        }

        /// Merging two histograms equals recording the union.
        #[test]
        fn merge_equals_union(
            a in proptest::collection::vec(0u64..1_000_000_000, 0..100),
            b in proptest::collection::vec(0u64..1_000_000_000, 0..100),
        ) {
            let mut ha = LogHistogram::new();
            for &v in &a { ha.record(v); }
            let mut hb = LogHistogram::new();
            for &v in &b { hb.record(v); }
            let mut merged = ha.clone();
            merged.merge(&hb);
            let mut direct = LogHistogram::new();
            for &v in a.iter().chain(b.iter()) { direct.record(v); }
            prop_assert_eq!(merged, direct);
        }
    }
}
