//! Rank correlation between graph features and behavior metrics.
//!
//! Section 4 of the paper makes directional claims — "all metrics of KC are
//! positively correlated to α, whereas communication intensity of PR is
//! negatively correlated to α" (Figures 2 and 4) — that its figures show
//! visually. This module quantifies them: Spearman rank correlation between
//! a graph feature (α, size) and each behavior metric, per algorithm, which
//! the `graphmine correlations` command tabulates.

use crate::behavior::{RawBehavior, WorkMetric};
use crate::rundb::RunDb;
use serde::{Deserialize, Serialize};

/// Average ranks, with ties sharing their midpoint rank.
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient; `None` when undefined (fewer
/// than two points or zero variance in either variable).
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n < 2 {
        return None;
    }
    let rx = ranks(x);
    let ry = ranks(y);
    let mean = (n + 1) as f64 / 2.0;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for i in 0..n {
        let dx = rx[i] - mean;
        let dy = ry[i] - mean;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// Which graph feature to correlate against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Feature {
    /// Power-law exponent α.
    Alpha,
    /// Configured graph size.
    Size,
}

/// Spearman correlations of one algorithm's four behavior metrics against
/// a graph feature. Entries are `None` when undefined (e.g. the algorithm
/// has no α, or a metric is constant).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricCorrelations {
    /// Algorithm abbreviation.
    pub algorithm: String,
    /// Correlation of UPDT/edge with the feature.
    pub updt: Option<f64>,
    /// Correlation of WORK/edge with the feature.
    pub work: Option<f64>,
    /// Correlation of EREAD/edge with the feature.
    pub eread: Option<f64>,
    /// Correlation of MSG/edge with the feature.
    pub msg: Option<f64>,
}

/// Compute per-algorithm feature↔metric correlations over a run database.
///
/// For [`Feature::Alpha`] the correlation is computed within each size
/// (α varies, size held fixed) and averaged across sizes — the paper's
/// "change the value of graph features one at a time" isolation — and
/// symmetrically for [`Feature::Size`].
pub fn feature_correlations(
    db: &RunDb,
    feature: Feature,
    metric: WorkMetric,
) -> Vec<MetricCorrelations> {
    let mut out = Vec::new();
    for alg in db.algorithms() {
        let idx = db.indices_of_algorithm(&alg);
        // Group runs by the *held-fixed* feature.
        let mut groups: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        for &i in &idx {
            let r = &db.runs[i];
            let key = match feature {
                Feature::Alpha => r.graph.size,
                Feature::Size => r.graph.alpha.map(|a| (a * 1000.0) as u64).unwrap_or(0),
            };
            groups.entry(key).or_default().push(i);
        }
        let mut sums = [0.0f64; 4];
        let mut counts = [0usize; 4];
        for members in groups.values() {
            if members.len() < 2 {
                continue;
            }
            let xs: Vec<f64> = members
                .iter()
                .map(|&i| match feature {
                    Feature::Alpha => db.runs[i].graph.alpha.unwrap_or(f64::NAN),
                    Feature::Size => db.runs[i].graph.size as f64,
                })
                .collect();
            if xs.iter().any(|x| x.is_nan()) {
                continue;
            }
            let behaviors: Vec<RawBehavior> =
                members.iter().map(|&i| db.runs[i].raw(metric)).collect();
            for (k, get) in [
                (
                    0usize,
                    (|b: &RawBehavior| b.updt) as fn(&RawBehavior) -> f64,
                ),
                (1, |b: &RawBehavior| b.work),
                (2, |b: &RawBehavior| b.eread),
                (3, |b: &RawBehavior| b.msg),
            ] {
                let ys: Vec<f64> = behaviors.iter().map(get).collect();
                if let Some(rho) = spearman(&xs, &ys) {
                    sums[k] += rho;
                    counts[k] += 1;
                }
            }
        }
        let avg = |k: usize| -> Option<f64> { (counts[k] > 0).then(|| sums[k] / counts[k] as f64) };
        out.push(MetricCorrelations {
            algorithm: alg,
            updt: avg(0),
            work: avg(1),
            eread: avg(2),
            msg: avg(3),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_perfect_monotone() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let inc = [10.0, 20.0, 25.0, 90.0];
        let dec = [5.0, 4.0, 3.0, -7.0];
        assert!((spearman(&x, &inc).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&x, &dec).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 1.0, 2.0, 2.0];
        let y = [3.0, 3.0, 5.0, 5.0];
        let rho = spearman(&x, &y).unwrap();
        assert!((rho - 1.0).abs() < 1e-12, "rho {rho}");
    }

    #[test]
    fn spearman_undefined_cases() {
        assert!(spearman(&[1.0], &[2.0]).is_none());
        assert!(spearman(&[1.0, 1.0], &[2.0, 3.0]).is_none()); // zero variance
    }

    #[test]
    fn spearman_uncorrelated_near_zero() {
        // A permutation with no monotone trend.
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let y = [3.0, 7.0, 0.0, 5.0, 1.0, 6.0, 2.0, 4.0];
        let rho = spearman(&x, &y).unwrap();
        assert!(rho.abs() < 0.5, "rho {rho}");
    }

    #[test]
    fn ranks_midpoint_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
