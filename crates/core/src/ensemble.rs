//! The spread metric and ensemble cost accounting (paper §5.1).

use crate::behavior::BehaviorVector;

/// Spread: mean pairwise Euclidean distance between ensemble members.
/// An ensemble with fewer than two members has spread 0.
pub fn spread(members: &[BehaviorVector]) -> f64 {
    let n = members.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            total += members[i].distance(&members[j]);
        }
    }
    // Mean over ordered pairs N(N-1) equals mean over unordered pairs.
    total / (n * (n - 1) / 2) as f64
}

/// Spread of the subset of `pool` selected by `indices`.
pub fn spread_of(pool: &[BehaviorVector], indices: &[usize]) -> f64 {
    let n = indices.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            total += pool[indices[i]].distance(&pool[indices[j]]);
        }
    }
    total / (n * (n - 1) / 2) as f64
}

/// Total benchmarking cost of an ensemble, modeled as the sum of iteration
/// counts of its runs (the paper's runtime-reduction lever in §5.6).
pub fn ensemble_cost(iterations: &[usize], indices: &[usize]) -> usize {
    indices.iter().map(|&i| iterations[i]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(x: f64) -> BehaviorVector {
        BehaviorVector([x, 0.0, 0.0, 0.0])
    }

    #[test]
    fn empty_and_singleton_have_zero_spread() {
        assert_eq!(spread(&[]), 0.0);
        assert_eq!(spread(&[bv(0.7)]), 0.0);
    }

    #[test]
    fn pair_spread_is_their_distance() {
        assert!((spread(&[bv(0.0), bv(1.0)]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustered_lower_than_dispersed() {
        let clustered = [bv(0.5), bv(0.51), bv(0.49)];
        let dispersed = [bv(0.0), bv(0.5), bv(1.0)];
        assert!(spread(&clustered) < spread(&dispersed));
    }

    #[test]
    fn permutation_invariant() {
        let a = [bv(0.1), bv(0.4), bv(0.9)];
        let b = [bv(0.9), bv(0.1), bv(0.4)];
        assert!((spread(&a) - spread(&b)).abs() < 1e-12);
    }

    #[test]
    fn spread_of_matches_spread() {
        let pool = [bv(0.0), bv(0.3), bv(0.6), bv(1.0)];
        let idx = [0usize, 2, 3];
        let subset: Vec<_> = idx.iter().map(|&i| pool[i]).collect();
        assert!((spread_of(&pool, &idx) - spread(&subset)).abs() < 1e-12);
    }

    #[test]
    fn duplicating_a_member_lowers_spread() {
        let base = [bv(0.0), bv(1.0)];
        let dup = [bv(0.0), bv(1.0), bv(1.0)];
        assert!(spread(&dup) < spread(&base));
    }

    #[test]
    fn cost_sums_iterations() {
        let iters = [10usize, 700, 2, 20];
        assert_eq!(ensemble_cost(&iters, &[0, 2]), 12);
        assert_eq!(ensemble_cost(&iters, &[]), 0);
        assert_eq!(ensemble_cost(&iters, &[1, 3]), 720);
    }
}
