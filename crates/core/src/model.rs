//! Runtime prediction from behavior vectors — the paper's future-work
//! question (§7): *"Can we model precisely a graph computation's behavior,
//! and predict its performance?"*
//!
//! The model is deliberately simple and interpretable: ridge-regularized
//! linear regression from a run's behavior features to the logarithm of its
//! end-to-end runtime,
//!
//! ```text
//! log10(runtime) ≈ w · [1, log10(m), log10(iters),
//!                       UPDT/edge, log10(1 + WORK/edge),
//!                       EREAD/edge, MSG/edge]
//! ```
//!
//! which is exactly the hypothesis behind the behavior space: if
//! `<UPDT, WORK, EREAD, MSG>` captures what a computation *does*, then
//! together with problem scale it should explain what the computation
//! *costs*. The `graphmine predict` command fits the model on a run
//! database and reports train/holdout R².

use crate::behavior::WorkMetric;
use crate::rundb::{RunDb, RunRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of regression features (including the intercept).
pub const NUM_FEATURES: usize = 7;

/// A fitted runtime model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeModel {
    /// Regression weights, aligned with [`RuntimeModel::feature_names`].
    pub weights: Vec<f64>,
}

/// Extract the feature vector of a run.
pub fn features(record: &RunRecord) -> [f64; NUM_FEATURES] {
    let b = record.raw(WorkMetric::WallNanos);
    [
        1.0,
        (record.num_edges.max(1) as f64).log10(),
        (record.iterations.max(1) as f64).log10(),
        b.updt,
        (1.0 + b.work).log10(),
        b.eread,
        b.msg,
    ]
}

/// Solve the dense linear system `A x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` for (numerically) singular systems.
fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite matrix")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in (col + 1)..n {
            sum -= a[col][k] * x[k];
        }
        x[col] = sum / a[col][col];
    }
    Some(x)
}

impl RuntimeModel {
    /// Human-readable feature names aligned with the weights.
    pub fn feature_names() -> [&'static str; NUM_FEATURES] {
        [
            "intercept",
            "log10(edges)",
            "log10(iterations)",
            "UPDT/edge",
            "log10(1+WORK/edge)",
            "EREAD/edge",
            "MSG/edge",
        ]
    }

    /// Fit by ridge-regularized least squares on all runs with a measured
    /// runtime. Returns `None` with fewer than `NUM_FEATURES` usable runs.
    pub fn fit(db: &RunDb) -> Option<RuntimeModel> {
        Self::fit_on(db, &Self::usable_indices(db))
    }

    /// Indices of runs carrying a runtime measurement.
    pub fn usable_indices(db: &RunDb) -> Vec<usize> {
        db.runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.runtime_ms > 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Fit on a subset of run indices.
    pub fn fit_on(db: &RunDb, indices: &[usize]) -> Option<RuntimeModel> {
        if indices.len() < NUM_FEATURES {
            return None;
        }
        // Normal equations with a small ridge on non-intercept terms.
        let mut xtx = vec![vec![0.0f64; NUM_FEATURES]; NUM_FEATURES];
        let mut xty = vec![0.0f64; NUM_FEATURES];
        for &i in indices {
            let r = &db.runs[i];
            let x = features(r);
            let y = r.runtime_ms.max(1e-6).log10();
            for a in 0..NUM_FEATURES {
                for b in 0..NUM_FEATURES {
                    xtx[a][b] += x[a] * x[b];
                }
                xty[a] += x[a] * y;
            }
        }
        for (d, row) in xtx.iter_mut().enumerate().skip(1) {
            row[d] += 1e-6 * indices.len() as f64;
        }
        let weights = solve_dense(xtx, xty)?;
        Some(RuntimeModel { weights })
    }

    /// Predicted runtime in milliseconds.
    pub fn predict_ms(&self, record: &RunRecord) -> f64 {
        let x = features(record);
        let log10: f64 = x.iter().zip(self.weights.iter()).map(|(a, w)| a * w).sum();
        10f64.powf(log10)
    }

    /// Coefficient of determination (R²) of log-runtime predictions over
    /// the given runs.
    pub fn r_squared(&self, db: &RunDb, indices: &[usize]) -> f64 {
        let ys: Vec<f64> = indices
            .iter()
            .map(|&i| db.runs[i].runtime_ms.max(1e-6).log10())
            .collect();
        if ys.len() < 2 {
            return 0.0;
        }
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean) * (y - mean)).sum();
        let ss_res: f64 = indices
            .iter()
            .zip(ys.iter())
            .map(|(&i, y)| {
                let pred = self.predict_ms(&db.runs[i]).max(1e-6).log10();
                (y - pred) * (y - pred)
            })
            .sum();
        if ss_tot <= 0.0 {
            return 0.0;
        }
        1.0 - ss_res / ss_tot
    }

    /// Train/holdout evaluation: fit on a random `1 - holdout_fraction` of
    /// the runs, report `(train_r2, holdout_r2)`.
    pub fn evaluate(
        db: &RunDb,
        holdout_fraction: f64,
        seed: u64,
    ) -> Option<(RuntimeModel, f64, f64)> {
        let mut indices = Self::usable_indices(db);
        if indices.len() < 2 * NUM_FEATURES {
            return None;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        // Fisher-Yates shuffle.
        for i in (1..indices.len()).rev() {
            let j = rng.gen_range(0..=i);
            indices.swap(i, j);
        }
        let split = ((indices.len() as f64) * (1.0 - holdout_fraction)).round() as usize;
        let split = split.clamp(NUM_FEATURES, indices.len() - 1);
        let (train, test) = indices.split_at(split);
        let model = Self::fit_on(db, train)?;
        let train_r2 = model.r_squared(db, train);
        let test_r2 = model.r_squared(db, test);
        Some((model, train_r2, test_r2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::RawBehavior;
    use crate::rundb::GraphSpec;

    /// Build a synthetic database whose log-runtime is an exact linear
    /// function of the features.
    fn synthetic_db(n: usize) -> RunDb {
        let true_w = [0.5, 0.8, 0.3, 2.0, 1.5, 0.7, 0.4];
        let mut db = RunDb::new();
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..n {
            let edges = 1_000 + (i as u64 * 37) % 100_000;
            let iterations = 1 + (i * 13) % 400;
            let raw = RawBehavior {
                updt: rng.gen::<f64>(),
                work: rng.gen::<f64>() * 100.0,
                eread: rng.gen::<f64>() * 2.0,
                msg: rng.gen::<f64>() * 2.0,
            };
            let mut record = RunRecord {
                algorithm: "X".into(),
                domain: "Y".into(),
                graph: GraphSpec {
                    size: edges,
                    alpha: None,
                    label: "s".into(),
                },
                seed: 0,
                iterations,
                converged: true,
                num_vertices: edges / 16,
                num_edges: edges,
                active_fraction: vec![],
                behavior_wall: raw,
                behavior_ops: raw,
                runtime_ms: 0.0,
                tenant: None,
            };
            let x = features(&record);
            let log_y: f64 = x.iter().zip(true_w.iter()).map(|(a, w)| a * w).sum();
            record.runtime_ms = 10f64.powf(log_y);
            db.push(record);
        }
        db
    }

    #[test]
    fn recovers_exact_linear_model() {
        let db = synthetic_db(120);
        let model = RuntimeModel::fit(&db).expect("fits");
        let idx = RuntimeModel::usable_indices(&db);
        let r2 = model.r_squared(&db, &idx);
        assert!(r2 > 0.9999, "R² = {r2}");
        // Point predictions land within 1% on log scale.
        for &i in idx.iter().take(10) {
            let pred = model.predict_ms(&db.runs[i]);
            let truth = db.runs[i].runtime_ms;
            assert!(
                (pred.log10() - truth.log10()).abs() < 0.01,
                "{pred} vs {truth}"
            );
        }
    }

    #[test]
    fn holdout_generalizes_on_clean_data() {
        let db = synthetic_db(200);
        let (_, train_r2, test_r2) = RuntimeModel::evaluate(&db, 0.25, 7).expect("evaluates");
        assert!(train_r2 > 0.999);
        assert!(test_r2 > 0.999, "holdout R² = {test_r2}");
    }

    #[test]
    fn too_few_runs_is_none() {
        let db = synthetic_db(3);
        assert!(RuntimeModel::fit(&db).is_none());
        assert!(RuntimeModel::evaluate(&db, 0.25, 1).is_none());
    }

    #[test]
    fn unmeasured_runs_excluded() {
        let mut db = synthetic_db(30);
        db.runs[0].runtime_ms = 0.0;
        assert_eq!(RuntimeModel::usable_indices(&db).len(), 29);
    }

    #[test]
    fn solve_dense_rejects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_dense(a, vec![1.0, 2.0]).is_none());
        let a = vec![vec![2.0, 0.0], vec![0.0, 3.0]];
        let x = solve_dense(a, vec![4.0, 9.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
    }
}
