//! Complexity-limited ensembles (paper §5.6).
//!
//! "Because the best ensembles require complex combinations of algorithms
//! and graphs, it is worthwhile to consider simpler combinations": pools
//! limited to a few algorithms, pools limited to a few graphs, and
//! runtime-shortened suites built from the constant-active-fraction
//! algorithms (AD, KM, NMF, SGD, SVD) whose "constant, repetitive behavior"
//! lets their runs be truncated without changing per-iteration behavior.

use crate::rundb::RunDb;

/// Indices of runs restricted to the given algorithm abbreviations
/// (paper: the {KM, ALS, TC} three-algorithm suite).
pub fn limited_algorithm_pool(db: &RunDb, algorithms: &[&str]) -> Vec<usize> {
    db.runs
        .iter()
        .enumerate()
        .filter(|(_, r)| algorithms.contains(&r.algorithm.as_str()))
        .map(|(i, _)| i)
        .collect()
}

/// Indices of runs restricted to the given graph structures
/// `(size, alpha)` (paper: three graphs of sizes 10⁷–10⁹ with α = 2.0).
pub fn limited_graph_pool(db: &RunDb, structures: &[(u64, Option<f64>)]) -> Vec<usize> {
    let keys: Vec<(u64, Option<u64>)> = structures
        .iter()
        .map(|(s, a)| (*s, a.map(|a| (a * 1000.0) as u64)))
        .collect();
    db.runs
        .iter()
        .enumerate()
        .filter(|(_, r)| keys.contains(&r.graph.structure_key()))
        .map(|(i, _)| i)
        .collect()
}

/// Benchmarking cost (total iterations) of an ensemble when the runs of
/// `shortenable` algorithms are truncated to `cap` iterations — the paper's
/// runtime-reduction optimization. Because those algorithms have constant
/// per-iteration behavior, truncation leaves their behavior vectors (and
/// hence the ensemble's spread/coverage) unchanged.
pub fn runtime_limited_cost(
    db: &RunDb,
    indices: &[usize],
    shortenable: &[&str],
    cap: usize,
) -> usize {
    indices
        .iter()
        .map(|&i| {
            let r = &db.runs[i];
            if shortenable.contains(&r.algorithm.as_str()) {
                r.iterations.min(cap)
            } else {
                r.iterations
            }
        })
        .sum()
}

/// The paper's shortenable set: algorithms with constant active fraction.
pub const SHORTENABLE: [&str; 5] = ["AD", "KM", "NMF", "SGD", "SVD"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rundb::{GraphSpec, RunRecord};
    use graphmine_engine::{IterationStats, RunTrace};

    fn record(alg: &str, size: u64, alpha: f64, iters: usize) -> RunRecord {
        let trace = RunTrace {
            num_vertices: 4,
            num_edges: 4,
            iterations: vec![
                IterationStats {
                    active: 4,
                    updates: 4,
                    edge_reads: 8,
                    messages: 2,
                    apply_ns: 10,
                    apply_ops: 5,
                    remote_edge_reads: 0,
                    remote_messages: 0,
                    frontier_density: 1.0,
                    ..IterationStats::default()
                };
                iters
            ],
            converged: true,
        };
        RunRecord::from_trace(
            alg,
            "X",
            GraphSpec {
                size,
                alpha: Some(alpha),
                label: format!("{size}"),
            },
            0,
            &trace,
        )
    }

    fn db() -> RunDb {
        let mut db = RunDb::new();
        db.push(record("KM", 100, 2.0, 700)); // 0
        db.push(record("ALS", 100, 2.0, 60)); // 1
        db.push(record("TC", 1000, 2.5, 1)); // 2
        db.push(record("CC", 1000, 2.5, 12)); // 3
        db
    }

    #[test]
    fn algorithm_pool_filters() {
        let db = db();
        assert_eq!(
            limited_algorithm_pool(&db, &["KM", "ALS", "TC"]),
            vec![0, 1, 2]
        );
        assert_eq!(limited_algorithm_pool(&db, &["CC"]), vec![3]);
        assert!(limited_algorithm_pool(&db, &[]).is_empty());
    }

    #[test]
    fn graph_pool_filters() {
        let db = db();
        assert_eq!(limited_graph_pool(&db, &[(1000, Some(2.5))]), vec![2, 3]);
        assert!(limited_graph_pool(&db, &[(5, None)]).is_empty());
    }

    #[test]
    fn runtime_cap_only_hits_shortenable() {
        let db = db();
        let all = [0usize, 1, 2, 3];
        let full: usize = 700 + 60 + 1 + 12;
        assert_eq!(runtime_limited_cost(&db, &all, &[], usize::MAX), full);
        // KM capped at 20; ALS is NOT shortenable (activity varies).
        let capped = runtime_limited_cost(&db, &all, &SHORTENABLE, 20);
        assert_eq!(capped, 20 + 60 + 1 + 12);
    }

    #[test]
    fn shortenable_set_matches_paper() {
        assert_eq!(SHORTENABLE, ["AD", "KM", "NMF", "SGD", "SVD"]);
    }
}
