//! The run database: every `<algorithm, graph>` execution the study
//! produced, with enough metadata to rebuild every figure.

use crate::behavior::{normalize_behaviors, BehaviorVector, RawBehavior, WorkMetric};
use graphmine_engine::{FaultSite, IoShim, RunTrace};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// The graph configuration of a run (paper Table 2 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSpec {
    /// Configured size parameter: `nedges` for power-law/CF/MRF inputs,
    /// `nrows` for matrices, grid side for LBP.
    pub size: u64,
    /// Power-law exponent, when the input has one.
    pub alpha: Option<f64>,
    /// Human-readable size label used in figures ("1e5" etc.).
    pub label: String,
}

impl GraphSpec {
    /// Key identifying a graph structure (size, alpha) for single-graph
    /// ensembles.
    pub fn structure_key(&self) -> (u64, Option<u64>) {
        (self.size, self.alpha.map(|a| (a * 1000.0) as u64))
    }
}

/// One run record: `<algorithm, graph>` plus its measured behavior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Algorithm abbreviation ("CC", "ALS", …).
    pub algorithm: String,
    /// Application domain name.
    pub domain: String,
    /// The input graph configuration.
    pub graph: GraphSpec,
    /// Generator seed.
    pub seed: u64,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the run converged before its cap.
    pub converged: bool,
    /// Vertices in the realized graph.
    pub num_vertices: u64,
    /// Edges in the realized graph.
    pub num_edges: u64,
    /// Active-fraction series (for the Figure 1/5/7/11 plots); truncated to
    /// at most 512 entries to bound storage.
    pub active_fraction: Vec<f64>,
    /// Per-edge behavior with wall-clock WORK.
    pub behavior_wall: RawBehavior,
    /// Per-edge behavior with logical-ops WORK.
    pub behavior_ops: RawBehavior,
    /// End-to-end wall-clock runtime of the run in milliseconds (0 when
    /// not measured — e.g. records built directly from traces).
    #[serde(default)]
    pub runtime_ms: f64,
    /// Tenant that submitted the run, when the producing server had
    /// multi-tenancy enabled (`None` for single-tenant and offline runs).
    #[serde(default)]
    pub tenant: Option<String>,
}

impl RunRecord {
    /// Build a record from a finished trace.
    #[allow(clippy::too_many_arguments)]
    pub fn from_trace(
        algorithm: &str,
        domain: &str,
        graph: GraphSpec,
        seed: u64,
        trace: &RunTrace,
    ) -> RunRecord {
        let mut active_fraction = trace.active_fraction();
        if active_fraction.len() > 512 {
            active_fraction.truncate(512);
        }
        RunRecord {
            algorithm: algorithm.to_string(),
            domain: domain.to_string(),
            graph,
            seed,
            iterations: trace.num_iterations(),
            converged: trace.converged,
            num_vertices: trace.num_vertices,
            num_edges: trace.num_edges,
            active_fraction,
            behavior_wall: RawBehavior::from_trace(trace, WorkMetric::WallNanos),
            behavior_ops: RawBehavior::from_trace(trace, WorkMetric::LogicalOps),
            runtime_ms: 0.0,
            tenant: None,
        }
    }

    /// Attach a measured end-to-end runtime.
    pub fn with_runtime_ms(mut self, ms: f64) -> RunRecord {
        self.runtime_ms = ms;
        self
    }

    /// Attach the submitting tenant's id.
    pub fn with_tenant(mut self, tenant: Option<String>) -> RunRecord {
        self.tenant = tenant;
        self
    }

    /// The selected raw behavior.
    pub fn raw(&self, metric: WorkMetric) -> RawBehavior {
        match metric {
            WorkMetric::WallNanos => self.behavior_wall,
            WorkMetric::LogicalOps => self.behavior_ops,
        }
    }
}

/// The full study database.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunDb {
    /// All recorded runs.
    pub runs: Vec<RunRecord>,
}

impl RunDb {
    /// Create an empty database.
    pub fn new() -> RunDb {
        RunDb::default()
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Add a run.
    pub fn push(&mut self, record: RunRecord) {
        self.runs.push(record);
    }

    /// Normalized behavior vectors for all runs (database-level max
    /// scaling, paper §3.4).
    pub fn behaviors(&self, metric: WorkMetric) -> Vec<BehaviorVector> {
        let raw: Vec<RawBehavior> = self.runs.iter().map(|r| r.raw(metric)).collect();
        normalize_behaviors(&raw)
    }

    /// Indices of runs of one algorithm.
    pub fn indices_of_algorithm(&self, algorithm: &str) -> Vec<usize> {
        self.runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.algorithm == algorithm)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of runs on one graph structure (size + alpha).
    pub fn indices_of_graph(&self, size: u64, alpha: Option<f64>) -> Vec<usize> {
        let key = (size, alpha.map(|a| (a * 1000.0) as u64));
        self.runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.graph.structure_key() == key)
            .map(|(i, _)| i)
            .collect()
    }

    /// Distinct algorithm abbreviations, in first-appearance order.
    pub fn algorithms(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for r in &self.runs {
            if !seen.contains(&r.algorithm) {
                seen.push(r.algorithm.clone());
            }
        }
        seen
    }

    /// Distinct graph structures `(size, alpha)` in first-appearance order.
    pub fn graph_structures(&self) -> Vec<(u64, Option<f64>)> {
        let mut seen: Vec<(u64, Option<f64>)> = Vec::new();
        for r in &self.runs {
            let item = (r.graph.size, r.graph.alpha);
            if !seen.iter().any(|s| {
                s.0 == item.0
                    && s.1.map(|a| (a * 1000.0) as u64) == item.1.map(|a| (a * 1000.0) as u64)
            }) {
                seen.push(item);
            }
        }
        seen
    }

    /// Algorithm label per run (aligned with `behaviors()` indices).
    pub fn labels(&self) -> Vec<String> {
        self.runs.iter().map(|r| r.algorithm.clone()).collect()
    }

    /// Iteration count per run (for cost accounting).
    pub fn iteration_counts(&self) -> Vec<usize> {
        self.runs.iter().map(|r| r.iterations).collect()
    }

    /// Serialize to JSON at `path`, atomically: the JSON is written to a
    /// temporary file in the same directory and renamed over the target, so
    /// a crash mid-write can never leave a truncated database behind — the
    /// previous version stays intact until the rename commits.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.save_with(path, &IoShim::disabled())
    }

    /// [`RunDb::save`] with durable I/O routed through a fault-injection
    /// shim at the [`FaultSite::DbPersist`] site. An injected fault errors
    /// out of the save while the previous on-disk version stays intact
    /// (torn writes land only in the temp sibling, which the recovery path
    /// in [`RunDb::load_or_recover`] already knows to triage).
    pub fn save_with(&self, path: &Path, shim: &IoShim) -> io::Result<()> {
        let json = serde_json::to_string(self).map_err(io::Error::other)?;
        let tmp = tmp_path_for(path);
        shim.write_atomic(FaultSite::DbPersist, None, path, &tmp, json.as_bytes())
    }

    /// Load from JSON at `path`, distinguishing I/O failure from corrupt
    /// content so callers can decide to recover instead of erroring out.
    pub fn load(path: &Path) -> Result<RunDb, LoadError> {
        let data = std::fs::read_to_string(path).map_err(LoadError::Io)?;
        serde_json::from_str(&data).map_err(|e| LoadError::Corrupt {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })
    }

    /// Load from `path`, falling back to the best parseable temp sibling
    /// when the canonical file is missing or corrupt. Siblings are the
    /// `{name}.tmp.{pid}.{n}` files [`RunDb::save`] renames from: a writer
    /// that crashed between write and rename leaves a complete database
    /// under the temp name, and that database may hold *more* runs than the
    /// canonical file. Among parseable candidates the one with the most
    /// runs wins. Returns the database and whether recovery was used; errs
    /// with the canonical file's own failure when nothing is salvageable.
    pub fn load_or_recover(path: &Path) -> Result<(RunDb, bool), LoadError> {
        match RunDb::load(path) {
            Ok(db) => Ok((db, false)),
            Err(primary) => match best_temp_sibling(path) {
                Some(db) => Ok((db, true)),
                None => Err(primary),
            },
        }
    }
}

/// Why a [`RunDb`] could not be loaded.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read (includes not-found).
    Io(io::Error),
    /// The file was readable but not valid run-database JSON (truncated by
    /// disk corruption, or not a database at all).
    Corrupt {
        /// The file that failed to parse.
        path: std::path::PathBuf,
        /// The parser's diagnostic.
        detail: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "run database I/O error: {e}"),
            LoadError::Corrupt { path, detail } => {
                write!(f, "corrupt run database {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> LoadError {
        LoadError::Io(e)
    }
}

/// Keeps `RunDb::load(path)?` working in `io::Result` functions.
impl From<LoadError> for io::Error {
    fn from(e: LoadError) -> io::Error {
        match e {
            LoadError::Io(inner) => inner,
            corrupt => io::Error::new(io::ErrorKind::InvalidData, corrupt.to_string()),
        }
    }
}

/// The largest parseable database among `path`'s temp siblings, if any.
fn best_temp_sibling(path: &Path) -> Option<RunDb> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let prefix = format!("{}.tmp.", path.file_name()?.to_string_lossy());
    let mut best: Option<RunDb> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        if !entry.file_name().to_string_lossy().starts_with(&prefix) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let Ok(db) = serde_json::from_str::<RunDb>(&text) else {
            continue;
        };
        if best.as_ref().is_none_or(|b| db.len() > b.len()) {
            best = Some(db);
        }
    }
    best
}

/// Unique sibling path for the write-then-rename dance. Same directory as
/// the target so the rename stays within one filesystem (atomic on POSIX).
fn tmp_path_for(path: &Path) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let name = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| "rundb".to_string());
    path.with_file_name(format!("{name}.tmp.{pid}.{n}"))
}

/// A [`RunDb`] behind a mutex: many worker threads append finished runs
/// while readers take consistent snapshots. Persistence goes through the
/// atomic [`RunDb::save`], serialized under the same lock so two concurrent
/// saves can never interleave their temp-file renames out of order.
#[derive(Debug, Default)]
pub struct SharedRunDb {
    inner: std::sync::Mutex<RunDb>,
}

impl SharedRunDb {
    /// Wrap an existing database.
    pub fn new(db: RunDb) -> SharedRunDb {
        SharedRunDb {
            inner: std::sync::Mutex::new(db),
        }
    }

    /// Lock helper: a poisoned mutex just means a writer panicked mid-push;
    /// the `RunDb` itself is always structurally valid, so keep going.
    fn lock(&self) -> std::sync::MutexGuard<'_, RunDb> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of runs currently recorded.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Append a run, returning its index in the database.
    pub fn append(&self, record: RunRecord) -> usize {
        let mut db = self.lock();
        db.push(record);
        db.len() - 1
    }

    /// A consistent point-in-time copy of the whole database.
    pub fn snapshot(&self) -> RunDb {
        self.lock().clone()
    }

    /// Persist the current contents atomically. The lock is held across
    /// serialization and rename, so the file always reflects a consistent
    /// prefix of appends.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.lock().save(path)
    }

    /// [`SharedRunDb::save`] through a fault-injection shim.
    pub fn save_with(&self, path: &Path, shim: &IoShim) -> io::Result<()> {
        self.lock().save_with(path, shim)
    }

    /// Append then persist in one critical section.
    pub fn append_and_save(&self, record: RunRecord, path: &Path) -> io::Result<usize> {
        self.append_and_save_with(record, path, &IoShim::disabled())
    }

    /// [`SharedRunDb::append_and_save`] through a fault-injection shim. The
    /// append lands in memory even when the persist faults: the record is
    /// not lost, only its durability is delayed until the next save.
    pub fn append_and_save_with(
        &self,
        record: RunRecord,
        path: &Path,
        shim: &IoShim,
    ) -> io::Result<usize> {
        let mut db = self.lock();
        db.push(record);
        let index = db.len() - 1;
        db.save_with(path, shim)?;
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_engine::IterationStats;

    fn record(alg: &str, size: u64, alpha: f64, updt: u64) -> RunRecord {
        let trace = RunTrace {
            num_vertices: 10,
            num_edges: 10,
            iterations: vec![IterationStats {
                active: 10,
                updates: updt,
                edge_reads: 20,
                messages: 5,
                apply_ns: 100,
                apply_ops: 50,
                remote_edge_reads: 0,
                remote_messages: 0,
                frontier_density: 1.0,
                ..IterationStats::default()
            }],
            converged: true,
        };
        RunRecord::from_trace(
            alg,
            "GA",
            GraphSpec {
                size,
                alpha: Some(alpha),
                label: format!("{size}"),
            },
            0,
            &trace,
        )
    }

    fn sample_db() -> RunDb {
        let mut db = RunDb::new();
        db.push(record("CC", 100, 2.0, 10));
        db.push(record("CC", 1000, 2.5, 8));
        db.push(record("PR", 100, 2.0, 6));
        db.push(record("ALS", 1000, 2.5, 4));
        db
    }

    #[test]
    fn filters() {
        let db = sample_db();
        assert_eq!(db.indices_of_algorithm("CC"), vec![0, 1]);
        assert_eq!(db.indices_of_algorithm("ALS"), vec![3]);
        assert_eq!(db.indices_of_graph(100, Some(2.0)), vec![0, 2]);
        assert_eq!(db.indices_of_graph(999, Some(2.0)), Vec::<usize>::new());
    }

    #[test]
    fn distinct_listings() {
        let db = sample_db();
        assert_eq!(db.algorithms(), vec!["CC", "PR", "ALS"]);
        assert_eq!(db.graph_structures().len(), 2);
    }

    #[test]
    fn behaviors_normalized() {
        let db = sample_db();
        let b = db.behaviors(WorkMetric::LogicalOps);
        assert_eq!(b.len(), 4);
        // UPDT dimension: max is run 0 (10 updates / 10 edges = 1.0 raw).
        assert_eq!(b[0].0[0], 1.0);
        assert!((b[3].0[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn save_load_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("graphmine_rundb_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        db.save(&path).unwrap();
        let back = RunDb::load(&path).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("graphmine_rundb_tmpclean_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        db.save(&path).unwrap();
        db.save(&path).unwrap();
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
    }

    #[test]
    fn partial_write_crash_never_corrupts_existing_db() {
        // Simulate a crash mid-save: a good database exists on disk, then a
        // writer gets as far as dumping partial JSON into a temp sibling and
        // dies before the rename. The original file must still load intact.
        let db = sample_db();
        let dir = std::env::temp_dir().join("graphmine_rundb_crash_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        db.save(&path).unwrap();
        // The "crash": a partial write to the same temp naming scheme the
        // real save uses, never renamed.
        let orphan = tmp_path_for(&path);
        std::fs::write(&orphan, "{\"runs\":[{\"algorithm\":\"CC\",\"dom").unwrap();
        let back = RunDb::load(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&orphan).unwrap();
    }

    #[test]
    fn injected_persist_fault_leaves_previous_db_intact() {
        use graphmine_engine::{FaultKind, FaultPlan};
        let dir =
            std::env::temp_dir().join(format!("graphmine_rundb_shim_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        let db = sample_db();
        db.save(&path).unwrap();

        let mut bigger = db.clone();
        bigger.push(record("PR", 1000, 2.5, 7));
        let plan = FaultPlan::new();
        plan.arm(FaultSite::DbPersist, 0, FaultKind::TornWrite);
        let shim = IoShim::armed(std::sync::Arc::new(plan));
        let err = bigger.save_with(&path, &shim).unwrap_err();
        assert!(err.to_string().contains("injected torn write"));
        // The canonical file still holds the previous generation.
        assert_eq!(RunDb::load(&path).unwrap(), db);
        // A retry through the now-exhausted plan lands the new version.
        bigger.save_with(&path, &shim).unwrap();
        assert_eq!(RunDb::load(&path).unwrap(), bigger);
    }

    #[test]
    fn load_errors_are_typed() {
        let dir = std::env::temp_dir().join("graphmine_rundb_loaderr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = RunDb::load(&dir.join("nope.json")).unwrap_err();
        match missing {
            LoadError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::NotFound),
            other => panic!("expected Io, got {other}"),
        }
        let garbled = dir.join("garbled.json");
        std::fs::write(&garbled, "{\"runs\":[{\"algori").unwrap();
        assert!(matches!(
            RunDb::load(&garbled),
            Err(LoadError::Corrupt { .. })
        ));
    }

    #[test]
    fn recovery_prefers_largest_parseable_temp_sibling() {
        // A crash between temp-write and rename leaves the only complete
        // copy of the data under the temp name; a corrupted canonical file
        // must not hide it.
        let dir = std::env::temp_dir().join(format!(
            "graphmine_rundb_recover_test_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        std::fs::write(&path, "{\"runs\":[{\"trunc").unwrap();
        let small = {
            let mut db = RunDb::new();
            db.push(record("CC", 100, 2.0, 10));
            db
        };
        let full = sample_db();
        std::fs::write(&tmp_path_for(&path), serde_json::to_string(&small).unwrap()).unwrap();
        std::fs::write(&tmp_path_for(&path), serde_json::to_string(&full).unwrap()).unwrap();
        std::fs::write(&tmp_path_for(&path), "also corrupt").unwrap();
        let (back, recovered) = RunDb::load_or_recover(&path).unwrap();
        assert!(recovered);
        assert_eq!(back, full);
        // With nothing salvageable the canonical error surfaces.
        let bare = dir.join("other.json");
        std::fs::write(&bare, "nonsense").unwrap();
        assert!(matches!(
            RunDb::load_or_recover(&bare),
            Err(LoadError::Corrupt { .. })
        ));
    }

    #[test]
    fn load_error_converts_to_io_error() {
        let dir = std::env::temp_dir().join("graphmine_rundb_loadconv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let garbled = dir.join("garbled.json");
        std::fs::write(&garbled, "not json").unwrap();
        let as_io: io::Error = RunDb::load(&garbled).unwrap_err().into();
        assert_eq!(as_io.kind(), io::ErrorKind::InvalidData);
        let as_io: io::Error = RunDb::load(&dir.join("nope.json")).unwrap_err().into();
        assert_eq!(as_io.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn shared_rundb_threaded_appends_all_land() {
        let shared = std::sync::Arc::new(SharedRunDb::new(RunDb::new()));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        shared.append(record("CC", 100 + t * 100, 2.0, 1 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(shared.len(), 200);
        let snap = shared.snapshot();
        assert_eq!(snap.len(), 200);
    }

    #[test]
    fn shared_rundb_append_and_save_round_trips() {
        let dir = std::env::temp_dir().join("graphmine_rundb_shared_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        let shared = SharedRunDb::new(RunDb::new());
        let i0 = shared
            .append_and_save(record("CC", 100, 2.0, 5), &path)
            .unwrap();
        let i1 = shared
            .append_and_save(record("PR", 100, 2.0, 3), &path)
            .unwrap();
        assert_eq!((i0, i1), (0, 1));
        let back = RunDb::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back, shared.snapshot());
    }

    #[test]
    fn labels_and_iterations_aligned() {
        let db = sample_db();
        assert_eq!(db.labels().len(), db.len());
        assert_eq!(db.iteration_counts(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn active_fraction_truncated_to_512() {
        let trace = RunTrace {
            num_vertices: 2,
            num_edges: 1,
            iterations: vec![
                IterationStats {
                    active: 1,
                    updates: 1,
                    edge_reads: 0,
                    messages: 0,
                    apply_ns: 0,
                    apply_ops: 0,
                    remote_edge_reads: 0,
                    remote_messages: 0,
                    frontier_density: 0.0,
                    ..IterationStats::default()
                };
                600
            ],
            converged: false,
        };
        let r = RunRecord::from_trace(
            "KM",
            "Clustering",
            GraphSpec {
                size: 1,
                alpha: None,
                label: "1".into(),
            },
            0,
            &trace,
        );
        assert_eq!(r.active_fraction.len(), 512);
        assert_eq!(r.iterations, 600);
    }
}
