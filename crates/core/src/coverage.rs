//! The coverage metric (paper §5.1).
//!
//! "Coverage of an ensemble is defined as [NS over the summed] minimum
//! distance from all points in the space to the nearest point in the
//! ensemble … sample points are taken randomly and uniformly throughout the
//! space (we use 1 million)." Coverage is the *reciprocal of the mean
//! minimum distance*: it grows as the ensemble blankets the space, and the
//! magnitudes reproduce the paper's (≈3.9 for the best 20-member ensemble,
//! Figure 19).

use crate::behavior::{BehaviorVector, DIMS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// A reusable cloud of uniform sample points in `[0, 1]⁴`.
///
/// The cloud is deterministic for a given seed so every ensemble in a study
/// is scored against the *same* samples, exactly as the paper's
/// retrospective comparison requires.
#[derive(Debug, Clone)]
pub struct CoverageSampler {
    points: Vec<[f64; DIMS]>,
}

impl CoverageSampler {
    /// The paper's sample count.
    pub const PAPER_SAMPLES: usize = 1_000_000;

    /// Create a sampler with `n` uniform points.
    pub fn new(n: usize, seed: u64) -> CoverageSampler {
        assert!(n > 0, "need at least one sample point");
        let mut rng = SmallRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| std::array::from_fn(|_| rng.gen::<f64>()))
            .collect();
        CoverageSampler { points }
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sampler is empty (never true; constructor enforces > 0).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw sample points.
    pub fn points(&self) -> &[[f64; DIMS]] {
        &self.points
    }

    /// Sum over samples of the distance to the nearest of `members`.
    pub fn total_min_distance(&self, members: &[BehaviorVector]) -> f64 {
        if members.is_empty() {
            return f64::INFINITY;
        }
        self.points
            .par_iter()
            .map(|p| {
                members
                    .iter()
                    .map(|m| m.distance_to_point(p))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    }

    /// Per-sample minimum distances (used by incremental greedy search).
    pub fn min_distances(&self, members: &[BehaviorVector]) -> Vec<f64> {
        self.points
            .par_iter()
            .map(|p| {
                members
                    .iter()
                    .map(|m| m.distance_to_point(p))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    /// Distances from every sample to one candidate member.
    pub fn distances_to(&self, candidate: &BehaviorVector) -> Vec<f64> {
        self.points
            .par_iter()
            .map(|p| candidate.distance_to_point(p))
            .collect()
    }
}

/// Coverage of an ensemble: `NS / Σᵢ minₖ d(sampleᵢ, memberₖ)`.
/// An empty ensemble has coverage 0.
pub fn coverage(members: &[BehaviorVector], sampler: &CoverageSampler) -> f64 {
    if members.is_empty() {
        return 0.0;
    }
    let total = sampler.total_min_distance(members);
    if total <= 0.0 {
        // All samples coincide with members — unbounded coverage in theory;
        // report a large sentinel rather than infinity.
        return f64::MAX;
    }
    sampler.len() as f64 / total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(a: f64, b: f64, c: f64, d: f64) -> BehaviorVector {
        BehaviorVector([a, b, c, d])
    }

    #[test]
    fn deterministic_per_seed() {
        let s1 = CoverageSampler::new(100, 9);
        let s2 = CoverageSampler::new(100, 9);
        assert_eq!(s1.points(), s2.points());
        let s3 = CoverageSampler::new(100, 10);
        assert_ne!(s1.points(), s3.points());
    }

    #[test]
    fn empty_ensemble_zero_coverage() {
        let s = CoverageSampler::new(1000, 1);
        assert_eq!(coverage(&[], &s), 0.0);
    }

    #[test]
    fn supersets_never_lose_coverage() {
        // Adding members can only shrink per-sample minimum distances.
        let s = CoverageSampler::new(20_000, 2);
        let mut members = vec![bv(0.5, 0.5, 0.5, 0.5)];
        let mut prev = coverage(&members, &s);
        for extra in [
            bv(0.1, 0.1, 0.1, 0.1),
            bv(0.9, 0.9, 0.9, 0.9),
            bv(0.1, 0.9, 0.1, 0.9),
            bv(0.9, 0.1, 0.9, 0.1),
        ] {
            members.push(extra);
            let c = coverage(&members, &s);
            assert!(c >= prev - 1e-12, "coverage dropped: {c} < {prev}");
            prev = c;
        }
        // The full 5-member spread-out ensemble clearly beats the center.
        assert!(prev > coverage(&[bv(0.5, 0.5, 0.5, 0.5)], &s) * 1.1);
    }

    #[test]
    fn centered_beats_cornered_singleton() {
        let s = CoverageSampler::new(20_000, 3);
        let center = coverage(&[bv(0.5, 0.5, 0.5, 0.5)], &s);
        let corner = coverage(&[bv(0.0, 0.0, 0.0, 0.0)], &s);
        assert!(center > corner);
    }

    #[test]
    fn coverage_magnitude_sane() {
        // Mean distance from a uniform point in [0,1]^4 to the center is
        // ≈ 0.56 (slightly below sqrt(4/12)), so single-center coverage
        // ≈ 1/0.56 ≈ 1.78.
        let s = CoverageSampler::new(50_000, 4);
        let c = coverage(&[bv(0.5, 0.5, 0.5, 0.5)], &s);
        assert!((c - 1.78).abs() < 0.1, "coverage {c}");
    }

    #[test]
    fn min_distances_consistent_with_total() {
        let s = CoverageSampler::new(5_000, 5);
        let members = [bv(0.2, 0.4, 0.6, 0.8), bv(0.8, 0.6, 0.4, 0.2)];
        let per_sample = s.min_distances(&members);
        let total: f64 = per_sample.iter().sum();
        assert!((total - s.total_min_distance(&members)).abs() < 1e-9);
    }

    #[test]
    fn duplicate_member_changes_nothing() {
        let s = CoverageSampler::new(5_000, 6);
        let a = [bv(0.3, 0.3, 0.3, 0.3)];
        let aa = [bv(0.3, 0.3, 0.3, 0.3), bv(0.3, 0.3, 0.3, 0.3)];
        assert!((coverage(&a, &s) - coverage(&aa, &s)).abs() < 1e-12);
    }
}
