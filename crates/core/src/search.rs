//! Best-ensemble search (paper §5.2–§5.5).
//!
//! The paper reports, for every ensemble size, the best achievable spread
//! and coverage over pools of runs (single-algorithm, single-graph, or
//! unrestricted), plus a diversity analysis over the *100 best* ensembles.
//! Exhaustive search over C(215, 20) is impossible, so — like any faithful
//! reproduction — we use a greedy-augment construction refined by pairwise
//! exchange for spread, incremental greedy for coverage (the per-sample
//! minimum-distance array makes each candidate evaluation linear), and a
//! beam search to enumerate the top-k ensembles. Exhaustive enumeration is
//! used automatically when the pool and size are small enough, so tests can
//! cross-validate the heuristics.

use crate::behavior::BehaviorVector;
use crate::coverage::CoverageSampler;
use crate::ensemble::spread_of;
use rayon::prelude::*;
use std::collections::HashMap;

/// Which ensemble quality to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Maximize mean pairwise distance.
    Spread,
    /// Maximize `NS / Σ min-distance`.
    Coverage,
}

/// Number of exhaustive candidate subsets we are willing to enumerate
/// before switching to heuristics.
const EXHAUSTIVE_LIMIT: u128 = 200_000;

fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
        if acc > EXHAUSTIVE_LIMIT * 1000 {
            return u128::MAX;
        }
    }
    acc
}

/// Visit every k-subset of `0..n` (lexicographic).
fn for_each_subset(n: usize, k: usize, mut f: impl FnMut(&[usize])) {
    if k == 0 || k > n {
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        f(&idx);
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Best ensemble of `size` members maximizing **spread**, returned as
/// indices into `pool` (sorted ascending), together with the achieved
/// spread.
///
/// Small problems are solved exhaustively; larger ones by greedy
/// construction plus pairwise-exchange local search.
pub fn best_spread_ensemble(pool: &[BehaviorVector], size: usize) -> (Vec<usize>, f64) {
    let n = pool.len();
    if size == 0 || n == 0 {
        return (Vec::new(), 0.0);
    }
    let size = size.min(n);
    if binomial(n, size) <= EXHAUSTIVE_LIMIT {
        let mut best: Vec<usize> = (0..size).collect();
        let mut best_val = spread_of(pool, &best);
        for_each_subset(n, size, |subset| {
            let v = spread_of(pool, subset);
            if v > best_val {
                best_val = v;
                best = subset.to_vec();
            }
        });
        return (best, best_val);
    }

    // Greedy: seed with the farthest pair, then add the point that
    // maximizes the resulting spread.
    let mut members: Vec<usize> = Vec::with_capacity(size);
    {
        let mut far = (0usize, 1usize.min(n - 1));
        let mut far_d = -1.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = pool[i].distance(&pool[j]);
                if d > far_d {
                    far_d = d;
                    far = (i, j);
                }
            }
        }
        members.push(far.0);
        if size > 1 {
            members.push(far.1);
        }
    }
    while members.len() < size {
        // Adding x to a set S changes spread to
        // (sum_S + Σ_{s∈S} d(x,s)) / C(|S|+1, 2).
        let current_sum: f64 = pair_sum(pool, &members);
        let k = members.len();
        let best = (0..n)
            .into_par_iter()
            .filter(|i| !members.contains(i))
            .map(|i| {
                let add: f64 = members.iter().map(|&s| pool[s].distance(&pool[i])).sum();
                (i, (current_sum + add) / ((k + 1) * k / 2) as f64)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite spread"));
        match best {
            Some((i, _)) => members.push(i),
            None => break,
        }
    }

    // Pairwise exchange until no improvement.
    let mut improved = true;
    let mut guard = 0;
    while improved && guard < 64 {
        improved = false;
        guard += 1;
        let current = spread_of(pool, &members);
        'outer: for slot in 0..members.len() {
            for cand in 0..n {
                if members.contains(&cand) {
                    continue;
                }
                let saved = members[slot];
                members[slot] = cand;
                if spread_of(pool, &members) > current + 1e-15 {
                    improved = true;
                    break 'outer;
                }
                members[slot] = saved;
            }
        }
    }
    members.sort_unstable();
    let val = spread_of(pool, &members);
    (members, val)
}

fn pair_sum(pool: &[BehaviorVector], members: &[usize]) -> f64 {
    let mut s = 0.0;
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            s += pool[members[i]].distance(&pool[members[j]]);
        }
    }
    s
}

/// Best ensemble of `size` members maximizing **coverage** (greedy; the
/// coverage objective is monotone and close to submodular, so greedy is the
/// standard near-optimal construction).
pub fn best_coverage_ensemble(
    pool: &[BehaviorVector],
    size: usize,
    sampler: &CoverageSampler,
) -> (Vec<usize>, f64) {
    let n = pool.len();
    if size == 0 || n == 0 {
        return (Vec::new(), 0.0);
    }
    let size = size.min(n);
    let mut members: Vec<usize> = Vec::with_capacity(size);
    // Per-sample distance to the nearest chosen member.
    let mut min_dist = vec![f64::INFINITY; sampler.len()];
    for _ in 0..size {
        let best = (0..n)
            .into_par_iter()
            .filter(|i| !members.contains(i))
            .map(|i| {
                let total: f64 = sampler
                    .points()
                    .iter()
                    .zip(min_dist.iter())
                    .map(|(p, &md)| md.min(pool[i].distance_to_point(p)))
                    .sum();
                (i, total)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite totals"));
        let Some((chosen, _)) = best else { break };
        members.push(chosen);
        for (md, p) in min_dist.iter_mut().zip(sampler.points()) {
            *md = md.min(pool[chosen].distance_to_point(p));
        }
    }
    members.sort_unstable();
    let total: f64 = min_dist.iter().sum();
    let cov = if total > 0.0 {
        sampler.len() as f64 / total
    } else {
        f64::MAX
    };
    (members, cov)
}

/// Enumerate the `k` best *behaviorally distinct* ensembles of `size`
/// members by beam search, returning `(members, score)` pairs sorted
/// best-first. Used for the paper's §5.5 "100 best ensembles" diversity
/// analysis.
///
/// Pools of real runs contain many near-duplicate behavior points (e.g.
/// twenty SGD runs whose vectors coincide); without care the top-k fills
/// with copies of one ensemble that differ only in *which* duplicate run
/// was picked, which is exactly the shadowing the paper's §5.5 analysis
/// tries to avoid. Candidate ensembles are therefore deduplicated by a
/// quantized behavior signature, so each beam slot holds a genuinely
/// different region of the space.
pub fn top_k_ensembles(
    pool: &[BehaviorVector],
    size: usize,
    k: usize,
    objective: Objective,
    sampler: &CoverageSampler,
) -> Vec<(Vec<usize>, f64)> {
    let n = pool.len();
    if size == 0 || n == 0 || k == 0 {
        return Vec::new();
    }
    let size = size.min(n);
    let score = |members: &[usize]| -> f64 {
        match objective {
            Objective::Spread => spread_of(pool, members),
            Objective::Coverage => {
                let vs: Vec<BehaviorVector> = members.iter().map(|&i| pool[i]).collect();
                crate::coverage::coverage(&vs, sampler)
            }
        }
    };
    // Quantized per-point signature: collapses duplicate behavior vectors.
    let point_sig = |i: usize| -> u64 {
        let b = pool[i].0;
        let mut sig: u64 = 0;
        for (d, &x) in b.iter().enumerate() {
            let q = (x.clamp(0.0, 1.0) * 4095.0).round() as u64;
            sig |= q << (d * 12);
        }
        sig
    };
    let sigs: Vec<u64> = (0..n).map(point_sig).collect();
    let ensemble_sig = |members: &[usize]| -> Vec<u64> {
        let mut v: Vec<u64> = members.iter().map(|&i| sigs[i]).collect();
        v.sort_unstable();
        v
    };
    // Beam width: enough to keep one slot per distinct pool point, without
    // quadratic blow-up when k << n (signature dedup already removes the
    // duplicate-swap clones that would otherwise demand extra width).
    let width = k.max(n);
    // Seed: one singleton per distinct behavior point.
    let mut beam: Vec<Vec<usize>> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            if seen.insert(sigs[i]) {
                beam.push(vec![i]);
            }
        }
    }
    for _round in 1..size {
        // Expand: add any non-member (unordered — the beam holds *sets*).
        let expanded: Vec<(Vec<usize>, f64)> = beam
            .par_iter()
            .flat_map_iter(|members| {
                (0..n).filter_map(move |cand| {
                    if members.contains(&cand) {
                        return None;
                    }
                    let mut next = members.clone();
                    next.push(cand);
                    next.sort_unstable();
                    Some(next)
                })
            })
            .map(|members| {
                let s = score(&members);
                (members, s)
            })
            .collect();
        // Dedup by behavior signature, keeping the best-scoring candidate.
        let mut best_by_sig: HashMap<Vec<u64>, (Vec<usize>, f64)> = HashMap::new();
        for (members, s) in expanded {
            let sig = ensemble_sig(&members);
            match best_by_sig.get(&sig) {
                Some((_, existing)) if *existing >= s => {}
                _ => {
                    best_by_sig.insert(sig, (members, s));
                }
            }
        }
        let mut deduped: Vec<(Vec<usize>, f64)> = best_by_sig.into_values().collect();
        deduped.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite ensemble scores"));
        deduped.truncate(width);
        beam = deduped.into_iter().map(|(m, _)| m).collect();
        if beam.is_empty() {
            return Vec::new();
        }
    }
    let mut scored: Vec<(Vec<usize>, f64)> = beam
        .into_par_iter()
        .map(|m| {
            let s = score(&m);
            (m, s)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite ensemble scores"));
    scored.truncate(k);
    scored
}

/// Frequency of appearance of each label among the members of the given
/// ensembles (paper Figures 20–21: "within the 100 best ensembles, we use
/// the frequency of appearance of each algorithm as an indication of
/// contribution to diversity").
///
/// `labels[i]` is the label (e.g. algorithm abbreviation) of pool member
/// `i`; the result maps label → total appearances.
pub fn frequency_in_top_ensembles(
    ensembles: &[(Vec<usize>, f64)],
    labels: &[String],
) -> HashMap<String, usize> {
    let mut freq = HashMap::new();
    for (members, _) in ensembles {
        for &i in members {
            *freq.entry(labels[i].clone()).or_insert(0) += 1;
        }
    }
    freq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(a: f64, b: f64) -> BehaviorVector {
        BehaviorVector([a, b, 0.0, 0.0])
    }

    fn grid_pool() -> Vec<BehaviorVector> {
        // 5x5 grid in the first two dimensions.
        let mut pool = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                pool.push(bv(i as f64 / 4.0, j as f64 / 4.0));
            }
        }
        pool
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(4, 5), 0);
    }

    #[test]
    fn subset_enumeration_counts() {
        let mut count = 0;
        for_each_subset(5, 3, |_| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    fn best_spread_pair_is_the_diagonal() {
        let pool = grid_pool();
        let (members, val) = best_spread_ensemble(&pool, 2);
        // Opposite corners of the grid: (0,0) and (1,1) — indices 0 and 24,
        // or the anti-diagonal pair (0,1)/(1,0); both have distance sqrt(2).
        assert!((val - 2f64.sqrt()).abs() < 1e-9, "val {val}");
        assert_eq!(members.len(), 2);
    }

    #[test]
    fn exhaustive_matches_heuristic_on_small_pool() {
        // 8 points, size 3: exhaustive kicks in (C(8,3)=56); then force the
        // heuristic path on the same instance by replicating the pool until
        // binomial explodes, and check the achieved spread is at least 95%
        // of exhaustive.
        let pool: Vec<BehaviorVector> = (0..8)
            .map(|i| bv((i % 4) as f64 / 3.0, (i / 4) as f64))
            .collect();
        let (_, exact) = best_spread_ensemble(&pool, 3);
        // Heuristic on the identical pool: same optimum must be reachable —
        // build a bigger pool with the same extreme points plus clutter.
        let mut big = pool.clone();
        for i in 0..50 {
            big.push(bv(0.5 + (i as f64) * 1e-4, 0.5));
        }
        let (_, heur) = best_spread_ensemble(&big, 3);
        assert!(heur >= exact * 0.95, "heuristic {heur} vs exact {exact}");
    }

    #[test]
    fn spread_decreases_with_ensemble_size() {
        // Paper Figure 14: best spread declines as size grows.
        let pool = grid_pool();
        let mut prev = f64::INFINITY;
        for size in [2usize, 5, 10, 20] {
            let (_, val) = best_spread_ensemble(&pool, size);
            assert!(val <= prev + 1e-9, "size {size}: {val} > {prev}");
            prev = val;
        }
    }

    #[test]
    fn coverage_increases_with_ensemble_size() {
        // Paper Figure 15: best coverage grows with size.
        let pool = grid_pool();
        let sampler = CoverageSampler::new(5_000, 11);
        let mut prev = 0.0;
        for size in [1usize, 2, 5, 10] {
            let (_, val) = best_coverage_ensemble(&pool, size, &sampler);
            assert!(val >= prev - 1e-9, "size {size}: {val} < {prev}");
            prev = val;
        }
    }

    #[test]
    fn greedy_coverage_picks_center_first() {
        let pool = vec![
            bv(0.0, 0.0),
            BehaviorVector([0.5, 0.5, 0.5, 0.5]),
            bv(1.0, 0.0),
        ];
        let sampler = CoverageSampler::new(10_000, 12);
        let (members, _) = best_coverage_ensemble(&pool, 1, &sampler);
        assert_eq!(members, vec![1]);
    }

    #[test]
    fn top_k_sorted_and_unique() {
        let pool = grid_pool();
        let sampler = CoverageSampler::new(2_000, 13);
        let top = top_k_ensembles(&pool, 3, 10, Objective::Spread, &sampler);
        assert_eq!(top.len(), 10);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let mut seen = std::collections::HashSet::new();
        for (m, _) in &top {
            assert!(seen.insert(m.clone()), "duplicate ensemble {m:?}");
        }
        // The best beam result should match the dedicated search closely.
        let (_, best) = best_spread_ensemble(&pool, 3);
        assert!(top[0].1 >= best * 0.99);
    }

    #[test]
    fn frequency_counts_labels() {
        let ensembles = vec![(vec![0, 1], 1.0), (vec![1, 2], 0.9)];
        let labels: Vec<String> = ["ALS", "KM", "ALS"].iter().map(|s| s.to_string()).collect();
        let freq = frequency_in_top_ensembles(&ensembles, &labels);
        assert_eq!(freq["ALS"], 2);
        assert_eq!(freq["KM"], 2);
    }

    #[test]
    fn degenerate_inputs() {
        let pool = grid_pool();
        let sampler = CoverageSampler::new(100, 1);
        assert_eq!(best_spread_ensemble(&[], 3).0, Vec::<usize>::new());
        assert_eq!(best_spread_ensemble(&pool, 0).0, Vec::<usize>::new());
        assert_eq!(
            best_coverage_ensemble(&pool, 0, &sampler).0,
            Vec::<usize>::new()
        );
        assert!(top_k_ensembles(&pool, 0, 5, Objective::Spread, &sampler).is_empty());
    }

    #[test]
    fn oversized_request_clamps_to_pool() {
        let pool: Vec<BehaviorVector> = (0..4).map(|i| bv(i as f64 / 3.0, 0.0)).collect();
        let (members, _) = best_spread_ensemble(&pool, 10);
        assert_eq!(members, vec![0, 1, 2, 3]);
    }
}
