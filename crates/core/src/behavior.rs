//! Behavior vectors and their normalization (paper §3.4, §5.1).

use graphmine_engine::RunTrace;
use serde::{Deserialize, Serialize};

/// Dimensionality of the behavior space: `<UPDT, WORK, EREAD, MSG>`.
pub const DIMS: usize = 4;

/// Which WORK measurement to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkMetric {
    /// Wall-clock nanoseconds spent in apply (the paper's definition).
    WallNanos,
    /// Logical apply operations — deterministic, used by tests and anywhere
    /// reproducibility across machines matters.
    LogicalOps,
}

/// Un-normalized behavior: per-iteration averages *divided by the edge
/// count* (the paper's per-edge normalization), before database-level max
/// scaling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawBehavior {
    /// Vertex updates per iteration per edge.
    pub updt: f64,
    /// Apply work per iteration per edge (ns or ops, see [`WorkMetric`]).
    pub work: f64,
    /// Edge reads per iteration per edge.
    pub eread: f64,
    /// Messages per iteration per edge.
    pub msg: f64,
}

impl RawBehavior {
    /// Extract the per-edge behavior of a trace.
    pub fn from_trace(trace: &RunTrace, work: WorkMetric) -> RawBehavior {
        let m = trace.num_edges.max(1) as f64;
        RawBehavior {
            updt: trace.updt() / m,
            work: match work {
                WorkMetric::WallNanos => trace.work_ns() / m,
                WorkMetric::LogicalOps => trace.work_ops() / m,
            },
            eread: trace.eread() / m,
            msg: trace.msg() / m,
        }
    }

    /// The four components as an array.
    pub fn components(&self) -> [f64; DIMS] {
        [self.updt, self.work, self.eread, self.msg]
    }
}

/// A point in the normalized behavior space, each component in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorVector(pub [f64; DIMS]);

impl BehaviorVector {
    /// Euclidean distance to another behavior (the paper's `d(·,·)`).
    #[inline]
    pub fn distance(&self, other: &BehaviorVector) -> f64 {
        let mut s = 0.0;
        for i in 0..DIMS {
            let d = self.0[i] - other.0[i];
            s += d * d;
        }
        s.sqrt()
    }

    /// Distance to a raw sample point.
    #[inline]
    pub fn distance_to_point(&self, p: &[f64; DIMS]) -> f64 {
        let mut s = 0.0;
        for i in 0..DIMS {
            let d = self.0[i] - p[i];
            s += d * d;
        }
        s.sqrt()
    }
}

/// Max-normalize a set of raw behaviors into `[0, 1]⁴` (paper §3.4: "we
/// also normalize these metrics to make [them] less than 1.0 for
/// highlighting the relative difference").
///
/// Dimensions that are zero everywhere stay zero.
pub fn normalize_behaviors(raw: &[RawBehavior]) -> Vec<BehaviorVector> {
    let mut max = [0.0f64; DIMS];
    for r in raw {
        for (m, c) in max.iter_mut().zip(r.components()) {
            *m = m.max(c);
        }
    }
    raw.iter()
        .map(|r| {
            let c = r.components();
            BehaviorVector(std::array::from_fn(|i| {
                if max[i] > 0.0 {
                    c[i] / max[i]
                } else {
                    0.0
                }
            }))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_engine::IterationStats;

    fn trace() -> RunTrace {
        RunTrace {
            num_vertices: 10,
            num_edges: 5,
            iterations: vec![
                IterationStats {
                    active: 10,
                    updates: 10,
                    edge_reads: 20,
                    messages: 5,
                    apply_ns: 1000,
                    apply_ops: 100,
                    remote_edge_reads: 0,
                    remote_messages: 0,
                    frontier_density: 1.0,
                    ..IterationStats::default()
                },
                IterationStats {
                    active: 2,
                    updates: 2,
                    edge_reads: 4,
                    messages: 1,
                    apply_ns: 200,
                    apply_ops: 20,
                    remote_edge_reads: 0,
                    remote_messages: 0,
                    frontier_density: 0.2,
                    ..IterationStats::default()
                },
            ],
            converged: true,
        }
    }

    #[test]
    fn from_trace_per_edge() {
        let r = RawBehavior::from_trace(&trace(), WorkMetric::LogicalOps);
        assert_eq!(r.updt, 6.0 / 5.0);
        assert_eq!(r.eread, 12.0 / 5.0);
        assert_eq!(r.msg, 3.0 / 5.0);
        assert_eq!(r.work, 60.0 / 5.0);
    }

    #[test]
    fn work_metric_selection() {
        let ns = RawBehavior::from_trace(&trace(), WorkMetric::WallNanos);
        assert_eq!(ns.work, 600.0 / 5.0);
    }

    #[test]
    fn normalization_hits_one_per_dimension() {
        let raw = vec![
            RawBehavior {
                updt: 2.0,
                work: 1.0,
                eread: 8.0,
                msg: 0.0,
            },
            RawBehavior {
                updt: 1.0,
                work: 4.0,
                eread: 2.0,
                msg: 0.0,
            },
        ];
        let norm = normalize_behaviors(&raw);
        assert_eq!(norm[0].0, [1.0, 0.25, 1.0, 0.0]);
        assert_eq!(norm[1].0, [0.5, 1.0, 0.25, 0.0]);
    }

    #[test]
    fn all_zero_dimension_stays_zero() {
        let raw = vec![RawBehavior {
            updt: 0.0,
            work: 0.0,
            eread: 0.0,
            msg: 0.0,
        }];
        let norm = normalize_behaviors(&raw);
        assert_eq!(norm[0].0, [0.0; 4]);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = BehaviorVector([0.0, 0.0, 0.0, 0.0]);
        let b = BehaviorVector([1.0, 1.0, 1.0, 1.0]);
        assert!((a.distance(&b) - 2.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance_to_point(&[0.0, 3.0, 4.0, 0.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_values_bounded() {
        let raw: Vec<RawBehavior> = (0..20)
            .map(|i| RawBehavior {
                updt: i as f64,
                work: (i * 7 % 13) as f64,
                eread: (i * 3 % 5) as f64,
                msg: (i % 4) as f64,
            })
            .collect();
        for v in normalize_behaviors(&raw) {
            assert!(v.0.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }
}
