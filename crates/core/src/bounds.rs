//! Empirical upper bounds for spread and coverage (paper §5.2).
//!
//! "To understand the quality of the achieved spread, we also plot an
//! empirical upper bound … computed assuming ensemble members uniformly and
//! maximally distributed in the behavior space." Members of a bound
//! configuration are *free points* of `[0, 1]⁴`, not actual runs:
//!
//! * the spread bound places n free points to maximize mean pairwise
//!   distance (projected gradient ascent with restarts — the optimum pushes
//!   points into hypercube corners);
//! * the coverage bound places n free points to minimize the mean
//!   sample-to-nearest distance (Lloyd-style k-means over the sample cloud).

use crate::behavior::{BehaviorVector, DIMS};
use crate::coverage::{coverage, CoverageSampler};
use crate::ensemble::spread;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Empirical upper bound on the spread of an `n`-member ensemble.
pub fn spread_upper_bound(n: usize, seed: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best = 0.0f64;
    for _restart in 0..4 {
        let mut points: Vec<[f64; DIMS]> = (0..n)
            .map(|_| std::array::from_fn(|_| rng.gen::<f64>()))
            .collect();
        let mut step = 0.25;
        for _iter in 0..200 {
            // Gradient of mean pairwise distance w.r.t. point i is
            // Σ_j (p_i - p_j) / d(p_i, p_j) (up to constant factor).
            let grads: Vec<[f64; DIMS]> = (0..n)
                .map(|i| {
                    let mut g = [0.0f64; DIMS];
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        let mut d2 = 0.0;
                        for k in 0..DIMS {
                            let d = points[i][k] - points[j][k];
                            d2 += d * d;
                        }
                        let d = d2.sqrt().max(1e-9);
                        for k in 0..DIMS {
                            g[k] += (points[i][k] - points[j][k]) / d;
                        }
                    }
                    g
                })
                .collect();
            for (p, g) in points.iter_mut().zip(grads.iter()) {
                for k in 0..DIMS {
                    p[k] = (p[k] + step * g[k] / (n - 1) as f64).clamp(0.0, 1.0);
                }
            }
            step *= 0.98;
        }
        let vs: Vec<BehaviorVector> = points.into_iter().map(BehaviorVector).collect();
        best = best.max(spread(&vs));
    }
    best
}

/// Empirical upper bound on the coverage of an `n`-member ensemble,
/// evaluated against the given sampler.
pub fn coverage_upper_bound(n: usize, sampler: &CoverageSampler, seed: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let samples = sampler.points();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best = 0.0f64;
    for _restart in 0..3 {
        // k-means++-ish init: random distinct samples.
        let mut centers: Vec<[f64; DIMS]> = (0..n)
            .map(|_| samples[rng.gen_range(0..samples.len())])
            .collect();
        for _iter in 0..30 {
            // Assign samples to nearest center, accumulate means.
            let mut sums = vec![[0.0f64; DIMS]; n];
            let mut counts = vec![0usize; n];
            for p in samples {
                let mut bi = 0usize;
                let mut bd = f64::INFINITY;
                for (ci, c) in centers.iter().enumerate() {
                    let mut d2 = 0.0;
                    for k in 0..DIMS {
                        let d = p[k] - c[k];
                        d2 += d * d;
                    }
                    if d2 < bd {
                        bd = d2;
                        bi = ci;
                    }
                }
                counts[bi] += 1;
                for k in 0..DIMS {
                    sums[bi][k] += p[k];
                }
            }
            for i in 0..n {
                if counts[i] > 0 {
                    for k in 0..DIMS {
                        centers[i][k] = sums[i][k] / counts[i] as f64;
                    }
                } else {
                    // Re-seed empty clusters.
                    centers[i] = samples[rng.gen_range(0..samples.len())];
                }
            }
        }
        let vs: Vec<BehaviorVector> = centers.into_iter().map(BehaviorVector).collect();
        best = best.max(coverage(&vs, sampler));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_bound_pair_reaches_main_diagonal() {
        // Two free points maximize at opposite corners: distance 2 in 4-D.
        let b = spread_upper_bound(2, 1);
        assert!(b > 1.9, "bound {b}");
        assert!(b <= 2.0 + 1e-9);
    }

    #[test]
    fn spread_bound_decreases_with_n() {
        let b2 = spread_upper_bound(2, 2);
        let b8 = spread_upper_bound(8, 2);
        let b20 = spread_upper_bound(20, 2);
        assert!(b2 >= b8 - 0.05, "{b2} vs {b8}");
        assert!(b8 >= b20 - 0.05, "{b8} vs {b20}");
    }

    #[test]
    fn spread_bound_degenerate() {
        assert_eq!(spread_upper_bound(0, 0), 0.0);
        assert_eq!(spread_upper_bound(1, 0), 0.0);
    }

    #[test]
    fn coverage_bound_grows_with_n() {
        let sampler = CoverageSampler::new(20_000, 7);
        let c1 = coverage_upper_bound(1, &sampler, 3);
        let c4 = coverage_upper_bound(4, &sampler, 3);
        let c16 = coverage_upper_bound(16, &sampler, 3);
        assert!(c4 > c1, "{c4} vs {c1}");
        assert!(c16 > c4, "{c16} vs {c4}");
    }

    #[test]
    fn coverage_bound_beats_any_single_run() {
        // The single-point bound is the centroid — better than any corner.
        let sampler = CoverageSampler::new(20_000, 8);
        let bound = coverage_upper_bound(1, &sampler, 4);
        let corner = coverage(&[BehaviorVector([0.0; 4])], &sampler);
        assert!(bound > corner);
        // Centroid coverage in [0,1]^4 is ≈ 1.78.
        assert!((bound - 1.78).abs() < 0.25, "bound {bound}");
    }

    #[test]
    fn bounds_dominate_real_ensembles() {
        // Any ensemble drawn from actual pool points is below the bound.
        let sampler = CoverageSampler::new(10_000, 9);
        let pool: Vec<BehaviorVector> = (0..10)
            .map(|i| BehaviorVector([i as f64 / 9.0, 0.3, 0.7, 0.1]))
            .collect();
        let real_spread = spread(&pool);
        assert!(spread_upper_bound(10, 5) >= real_spread);
        let real_cov = coverage(&pool, &sampler);
        assert!(coverage_upper_bound(10, &sampler, 5) >= real_cov);
    }
}
