//! Spread/coverage Pareto analysis — a step toward the paper's closing
//! question (§7): *"Can we design optimal ensembles?"*
//!
//! Spread and coverage pull in different directions: spread rewards rim
//! points of the behavior space, coverage rewards centroidal placement
//! (compare the paper's Table 3 best-spread vs best-coverage members).
//! A benchmark designer therefore faces a genuine trade-off, which this
//! module makes explicit: enumerate candidate ensembles of a given size
//! and keep the ones not dominated in `(spread, coverage)`.

use crate::behavior::BehaviorVector;
use crate::coverage::{coverage, CoverageSampler};
use crate::ensemble::spread_of;
use crate::search::{best_coverage_ensemble, best_spread_ensemble, top_k_ensembles, Objective};

/// One point on the spread/coverage Pareto front.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoEnsemble {
    /// Member indices into the pool (sorted).
    pub members: Vec<usize>,
    /// Achieved spread.
    pub spread: f64,
    /// Achieved coverage.
    pub coverage: f64,
}

/// Keep only non-dominated `(spread, coverage)` points, sorted by
/// descending spread. A point dominates another when it is at least as
/// good in both objectives and strictly better in one.
fn pareto_filter(mut candidates: Vec<ParetoEnsemble>) -> Vec<ParetoEnsemble> {
    candidates.sort_by(|a, b| {
        b.spread
            .partial_cmp(&a.spread)
            .expect("finite spread")
            .then(
                b.coverage
                    .partial_cmp(&a.coverage)
                    .expect("finite coverage"),
            )
    });
    let mut front: Vec<ParetoEnsemble> = Vec::new();
    let mut best_cov = f64::NEG_INFINITY;
    for c in candidates {
        if c.coverage > best_cov + 1e-12 {
            best_cov = c.coverage;
            front.push(c);
        }
    }
    front
}

/// Approximate the spread/coverage Pareto front for ensembles of `size`
/// members from `pool`.
///
/// Candidates are drawn from the strongest available generators: the
/// dedicated best-spread and best-coverage searches plus the top-`breadth`
/// beam ensembles of each objective — the same machinery the §5 analyses
/// use — then filtered for dominance. The result always contains at least
/// the best-spread and best-coverage ensembles themselves (as front
/// endpoints), so it is never empty for a non-trivial pool.
pub fn pareto_front(
    pool: &[BehaviorVector],
    size: usize,
    breadth: usize,
    sampler: &CoverageSampler,
) -> Vec<ParetoEnsemble> {
    if pool.is_empty() || size == 0 {
        return Vec::new();
    }
    let evaluate = |members: Vec<usize>| -> ParetoEnsemble {
        let vs: Vec<BehaviorVector> = members.iter().map(|&i| pool[i]).collect();
        ParetoEnsemble {
            spread: spread_of(pool, &members),
            coverage: coverage(&vs, sampler),
            members,
        }
    };
    let mut candidates = Vec::new();
    candidates.push(evaluate(best_spread_ensemble(pool, size).0));
    candidates.push(evaluate(best_coverage_ensemble(pool, size, sampler).0));
    // Candidate *generation* ranks thousands of ensembles, so it runs on a
    // down-sampled cloud; the front itself is scored with the caller's
    // sampler above/below.
    let search_sampler = CoverageSampler::new(sampler.len().min(2_000), 0x5EED);
    for objective in [Objective::Spread, Objective::Coverage] {
        for (members, _) in top_k_ensembles(pool, size, breadth, objective, &search_sampler) {
            candidates.push(evaluate(members));
        }
    }
    pareto_filter(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(a: f64, b: f64) -> BehaviorVector {
        BehaviorVector([a, b, 0.0, 0.0])
    }

    fn pool() -> Vec<BehaviorVector> {
        let mut p = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                p.push(bv(i as f64 / 5.0, j as f64 / 5.0));
            }
        }
        p
    }

    #[test]
    fn front_is_sorted_and_non_dominated() {
        let sampler = CoverageSampler::new(4_000, 3);
        let front = pareto_front(&pool(), 4, 10, &sampler);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].spread >= w[1].spread);
            assert!(w[0].coverage <= w[1].coverage + 1e-12);
        }
        // No member dominates another.
        for a in &front {
            for b in &front {
                if a.members == b.members {
                    continue;
                }
                let dominates = a.spread >= b.spread
                    && a.coverage >= b.coverage
                    && (a.spread > b.spread || a.coverage > b.coverage);
                assert!(!dominates, "{a:?} dominates {b:?}");
            }
        }
    }

    #[test]
    fn endpoints_match_dedicated_searches() {
        let sampler = CoverageSampler::new(4_000, 4);
        let p = pool();
        let front = pareto_front(&p, 3, 10, &sampler);
        let (_, best_spread) = best_spread_ensemble(&p, 3);
        let (_, best_cov) = best_coverage_ensemble(&p, 3, &sampler);
        let max_spread = front.iter().map(|e| e.spread).fold(0.0, f64::max);
        let max_cov = front.iter().map(|e| e.coverage).fold(0.0, f64::max);
        assert!((max_spread - best_spread).abs() < 1e-9);
        assert!(max_cov >= best_cov - 1e-9);
    }

    #[test]
    fn trade_off_exists_on_grid() {
        // On a uniform grid the spread-max ensemble (corners) and the
        // coverage-max ensemble (centroids) differ, so the front has at
        // least two points.
        let sampler = CoverageSampler::new(4_000, 5);
        let front = pareto_front(&pool(), 4, 20, &sampler);
        assert!(front.len() >= 2, "expected a trade-off, front = {front:?}");
    }

    #[test]
    fn degenerate_inputs() {
        let sampler = CoverageSampler::new(100, 6);
        assert!(pareto_front(&[], 3, 5, &sampler).is_empty());
        assert!(pareto_front(&pool(), 0, 5, &sampler).is_empty());
    }
}
