//! The graph-computation **behavior space** and benchmark-ensemble
//! methodology — the primary contribution of the HPDC'15 paper.
//!
//! A graph computation `GC = <algorithm, graph size, degree distribution>`
//! is summarized by the vector (paper Eq. 2)
//!
//! ```text
//! Behavior(GC) = <UPDT, WORK, EREAD, MSG>
//! ```
//!
//! where each component is a per-iteration average divided by the number of
//! edges (§3.4) and then max-normalized over the whole run database so all
//! dimensions lie in `[0, 1]`. An *ensemble* `{GC₁, GC₂, …}` — a benchmark
//! suite, or any set of performance experiments — is scored by two metrics
//! (§5.1):
//!
//! * **spread** — mean pairwise distance between member behaviors; high
//!   spread means the ensemble is dispersed rather than clustered.
//! * **coverage** — `NS / Σᵢ minₖ d(sampleᵢ, memberₖ)` over `NS` uniform
//!   random sample points of the space; high coverage means no behavior is
//!   far from some ensemble member.
//!
//! The crate then reproduces the paper's ensemble studies: best ensembles
//! restricted to a single algorithm (§5.2) or a single graph (§5.3),
//! unrestricted search (§5.4), diversity/frequency analysis over the 100
//! best ensembles (§5.5), and complexity-limited suites (§5.6), plus the
//! empirical upper bounds plotted in Figures 14–19.
//!
//! ```
//! use graphmine_core::{spread, BehaviorVector};
//!
//! let a = BehaviorVector([0.0, 0.0, 0.0, 0.0]);
//! let b = BehaviorVector([1.0, 0.0, 0.0, 0.0]);
//! assert_eq!(spread(&[a, b]), 1.0);
//! ```

pub mod behavior;
pub mod bounds;
pub mod correlation;
pub mod coverage;
pub mod ensemble;
pub mod histogram;
pub mod limits;
pub mod model;
pub mod pareto;
pub mod rundb;
pub mod search;

pub use behavior::{normalize_behaviors, BehaviorVector, RawBehavior, WorkMetric, DIMS};
pub use bounds::{coverage_upper_bound, spread_upper_bound};
pub use correlation::{feature_correlations, spearman, Feature, MetricCorrelations};
pub use coverage::{coverage, CoverageSampler};
pub use ensemble::{ensemble_cost, spread, spread_of};
pub use histogram::{LogHistogram, REPORT_QUANTILES};
pub use limits::{limited_algorithm_pool, limited_graph_pool, runtime_limited_cost};
pub use model::{features as runtime_features, RuntimeModel};
pub use pareto::{pareto_front, ParetoEnsemble};
pub use rundb::{GraphSpec, LoadError, RunDb, RunRecord, SharedRunDb};
pub use search::{
    best_coverage_ensemble, best_spread_ensemble, frequency_in_top_ensembles, top_k_ensembles,
    Objective,
};
