//! Property-based tests on the behavior-space metrics.

use graphmine_core::{
    best_coverage_ensemble, best_spread_ensemble, coverage, normalize_behaviors, spread,
    BehaviorVector, CoverageSampler, RawBehavior,
};
use proptest::prelude::*;

fn arb_behavior() -> impl Strategy<Value = BehaviorVector> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0)
        .prop_map(|(a, b, c, d)| BehaviorVector([a, b, c, d]))
}

fn arb_pool(max: usize) -> impl Strategy<Value = Vec<BehaviorVector>> {
    proptest::collection::vec(arb_behavior(), 2..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Spread is symmetric, non-negative, and bounded by the 4-D diameter.
    #[test]
    fn spread_bounds(pool in arb_pool(24)) {
        let s = spread(&pool);
        prop_assert!(s >= 0.0);
        prop_assert!(s <= 2.0 + 1e-12); // diameter of [0,1]^4
        let mut reversed = pool.clone();
        reversed.reverse();
        prop_assert!((spread(&reversed) - s).abs() < 1e-12);
    }

    /// Translating all points together never changes spread.
    #[test]
    fn spread_translation_invariant(pool in arb_pool(16), shift in 0.0f64..0.2) {
        let moved: Vec<BehaviorVector> = pool
            .iter()
            .map(|b| BehaviorVector(std::array::from_fn(|i| b.0[i] * 0.8 + shift)))
            .collect();
        let scaled = spread(&moved);
        prop_assert!((scaled - 0.8 * spread(&pool)).abs() < 1e-9);
    }

    /// Coverage is monotone under adding members (superset property).
    #[test]
    fn coverage_monotone(pool in arb_pool(12)) {
        let sampler = CoverageSampler::new(2_000, 42);
        let partial = coverage(&pool[..pool.len() - 1], &sampler);
        let full = coverage(&pool, &sampler);
        prop_assert!(full >= partial - 1e-12);
    }

    /// Greedy coverage never does worse than a singleton pick; greedy
    /// spread never does worse than the farthest pair at size 2.
    #[test]
    fn searches_dominate_trivial_choices(pool in arb_pool(18)) {
        let sampler = CoverageSampler::new(2_000, 7);
        let (_, best2) = best_spread_ensemble(&pool, 2);
        // Farthest pair IS the optimum at size 2.
        let mut far = 0.0f64;
        for i in 0..pool.len() {
            for j in (i + 1)..pool.len() {
                far = far.max(pool[i].distance(&pool[j]));
            }
        }
        prop_assert!((best2 - far).abs() < 1e-9, "{best2} vs {far}");
        let (_, c2) = best_coverage_ensemble(&pool, 2, &sampler);
        let c1_best = (0..pool.len())
            .map(|i| coverage(&pool[i..=i], &sampler))
            .fold(0.0, f64::max);
        prop_assert!(c2 >= c1_best - 1e-9);
    }

    /// Max-normalization is idempotent and scale-invariant.
    #[test]
    fn normalization_scale_invariant(
        raws in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0),
            2..16,
        ),
        scale in 0.1f64..50.0,
    ) {
        let a: Vec<RawBehavior> = raws
            .iter()
            .map(|&(u, w, e, m)| RawBehavior { updt: u, work: w, eread: e, msg: m })
            .collect();
        let b: Vec<RawBehavior> = raws
            .iter()
            .map(|&(u, w, e, m)| RawBehavior {
                updt: u * scale,
                work: w * scale,
                eread: e * scale,
                msg: m * scale,
            })
            .collect();
        let na = normalize_behaviors(&a);
        let nb = normalize_behaviors(&b);
        for (x, y) in na.iter().zip(nb.iter()) {
            for k in 0..4 {
                prop_assert!((x.0[k] - y.0[k]).abs() < 1e-9);
            }
        }
    }

    /// best_spread_ensemble returns sorted, unique, in-range indices.
    #[test]
    fn search_returns_valid_indices(pool in arb_pool(24), size in 1usize..8) {
        let (members, _) = best_spread_ensemble(&pool, size);
        prop_assert_eq!(members.len(), size.min(pool.len()));
        prop_assert!(members.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(members.iter().all(|&i| i < pool.len()));
    }
}
