//! Shared helpers for the cross-crate integration tests.
//!
//! This crate's `[[test]]` targets exercise the full pipeline:
//! generators → GAS engine → behavior traces → behavior space →
//! ensemble analysis → figure rendering.
