//! Cross-executor equivalence: the same vertex programs reach the same
//! fixed points on the synchronous, asynchronous, and edge-centric
//! engines (paper §3.3: "the basic behavior of graph computation is
//! conserved" across computation models).

use graphmine_algos::cc::ConnectedComponents;
use graphmine_algos::sssp::ShortestPath;
use graphmine_engine::{
    async_run, edge_centric_run, AsyncConfig, EdgeCentricConfig, ExecutionConfig, NoGlobal,
    SyncEngine,
};
use graphmine_gen::{gaussian_edge_weights, powerlaw_graph, PowerLawConfig};
use graphmine_graph::union_find_components;

#[test]
fn cc_same_fixed_point_on_all_three_executors() {
    let graph = powerlaw_graph(&PowerLawConfig::new(4_000, 2.5, 77));
    let labels: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    let edges = vec![(); graph.num_edges()];
    let expected = union_find_components(&graph);

    let (sync_labels, sync_trace) =
        SyncEngine::new(&graph, ConnectedComponents, labels.clone(), edges.clone())
            .run(&ExecutionConfig::default());
    assert_eq!(sync_labels, expected);
    assert!(sync_trace.converged);

    let (async_labels, async_stats) = async_run(
        &graph,
        &ConnectedComponents,
        labels.clone(),
        edges.clone(),
        NoGlobal,
        &AsyncConfig::default(),
    );
    assert_eq!(async_labels, expected);
    assert!(async_stats.converged);

    let (ec_labels, ec_trace) = edge_centric_run(
        &graph,
        &ConnectedComponents,
        labels,
        &edges,
        NoGlobal,
        &EdgeCentricConfig::default(),
    );
    assert_eq!(ec_labels, expected);
    assert!(ec_trace.converged);
}

#[test]
fn sssp_same_distances_on_all_three_executors() {
    let graph = powerlaw_graph(&PowerLawConfig::new(3_000, 2.25, 31));
    let weights = gaussian_edge_weights(graph.num_edges(), 31);
    let program = ShortestPath { source: 0 };
    let init = vec![f64::INFINITY; graph.num_vertices()];

    let (sync_dist, _) = SyncEngine::new(
        &graph,
        ShortestPath { source: 0 },
        init.clone(),
        weights.clone(),
    )
    .run(&ExecutionConfig::default());

    let (async_dist, stats) = async_run(
        &graph,
        &program,
        init.clone(),
        weights.clone(),
        NoGlobal,
        &AsyncConfig::default(),
    );
    assert!(stats.converged);
    for (v, (a, b)) in sync_dist.iter().zip(async_dist.iter()).enumerate() {
        assert!(
            (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
            "vertex {v}: sync {a} vs async {b}"
        );
    }

    let (ec_dist, _) = edge_centric_run(
        &graph,
        &program,
        init,
        &weights,
        NoGlobal,
        &EdgeCentricConfig::default(),
    );
    for (v, (a, b)) in sync_dist.iter().zip(ec_dist.iter()).enumerate() {
        assert!(
            (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
            "vertex {v}: sync {a} vs edge-centric {b}"
        );
    }
}

#[test]
fn async_does_no_more_updates_than_it_needs() {
    // Asynchronous CC typically performs far fewer updates than
    // synchronous iterations x vertices, because quiet vertices are never
    // rescheduled. Sanity-check the accounting is in that regime.
    let graph = powerlaw_graph(&PowerLawConfig::new(5_000, 2.5, 3));
    let labels: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    let edges = vec![(); graph.num_edges()];
    let (_, sync_trace) =
        SyncEngine::new(&graph, ConnectedComponents, labels.clone(), edges.clone())
            .run(&ExecutionConfig::default());
    let sync_updates: u64 = sync_trace.iterations.iter().map(|it| it.updates).sum();
    let (_, stats) = async_run(
        &graph,
        &ConnectedComponents,
        labels,
        edges,
        NoGlobal,
        &AsyncConfig::default(),
    );
    assert!(
        stats.updates <= 3 * sync_updates,
        "async {} vs sync {}",
        stats.updates,
        sync_updates
    );
    assert!(stats.updates >= graph.num_vertices() as u64);
}

#[test]
fn priority_scheduler_wastes_fewer_sssp_updates() {
    // Single worker so the comparison is about scheduling order, not
    // thread interleaving. Closest-first ordering approximates Dijkstra,
    // so it should never need more updates than FIFO (and usually far
    // fewer on weighted graphs).
    let graph = powerlaw_graph(&PowerLawConfig::new(4_000, 2.5, 5));
    let weights = gaussian_edge_weights(graph.num_edges(), 5);
    let program = ShortestPath { source: 0 };
    let init = vec![f64::INFINITY; graph.num_vertices()];
    let run = |priority: bool| {
        let mut cfg = AsyncConfig {
            threads: 1,
            ..AsyncConfig::default()
        };
        if priority {
            cfg = cfg.with_priority_scheduler();
        }
        async_run(
            &graph,
            &program,
            init.clone(),
            weights.clone(),
            NoGlobal,
            &cfg,
        )
    };
    let (fifo_dist, fifo_stats) = run(false);
    let (prio_dist, prio_stats) = run(true);
    for (a, b) in fifo_dist.iter().zip(prio_dist.iter()) {
        assert!((a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()));
    }
    assert!(
        prio_stats.updates <= fifo_stats.updates,
        "priority {} vs fifo {}",
        prio_stats.updates,
        fifo_stats.updates
    );
}
