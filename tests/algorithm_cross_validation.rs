//! Cross-validation of every GAS algorithm against its sequential
//! reference on *generated* workloads (unit tests use hand-built graphs;
//! these use the same generators the study runs on).

use graphmine_algos::{adiam, cc, kcore, pagerank, sssp, tc};
use graphmine_engine::ExecutionConfig;
use graphmine_gen::{gaussian_edge_weights, powerlaw_graph, PowerLawConfig};
use graphmine_graph::union_find_components;
use proptest::prelude::*;

fn cfg() -> ExecutionConfig {
    ExecutionConfig::default()
}

#[test]
fn cc_matches_union_find_on_powerlaw() {
    for seed in 0..3u64 {
        let g = powerlaw_graph(&PowerLawConfig::new(3_000, 2.5, seed));
        let (labels, trace) = cc::run_cc(&g, &cfg());
        assert_eq!(labels, union_find_components(&g), "seed {seed}");
        assert!(trace.converged);
    }
}

#[test]
fn sssp_matches_dijkstra_on_powerlaw() {
    for seed in 0..3u64 {
        let g = powerlaw_graph(&PowerLawConfig::new(3_000, 2.25, seed));
        let w = gaussian_edge_weights(g.num_edges(), seed);
        let (dist, _) = sssp::run_sssp(&g, &w, 0, &cfg());
        let reference = sssp::dijkstra(&g, &w, 0);
        for (v, (a, b)) in dist.iter().zip(reference.iter()).enumerate() {
            assert!(
                (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
                "seed {seed} vertex {v}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn tc_matches_reference_on_powerlaw() {
    for seed in 0..3u64 {
        let g = powerlaw_graph(&PowerLawConfig::new(4_000, 2.0, seed));
        let (count, _) = tc::run_tc(&g, &cfg());
        assert_eq!(count, tc::triangle_count_reference(&g), "seed {seed}");
        // Scale-free graphs at alpha=2.0 have hubs, so triangles exist.
        assert!(count > 0, "seed {seed}: no triangles in a hubby graph");
    }
}

#[test]
fn kcore_matches_reference_on_powerlaw() {
    for seed in 0..3u64 {
        let g = powerlaw_graph(&PowerLawConfig::new(3_000, 2.5, seed));
        let (cores, _) = kcore::run_kcore(&g, &ExecutionConfig::with_max_iterations(10_000));
        assert_eq!(cores, kcore::kcore_reference(&g), "seed {seed}");
    }
}

#[test]
fn pagerank_matches_power_iteration_on_powerlaw() {
    let g = powerlaw_graph(&PowerLawConfig::new(2_000, 2.5, 5));
    let (ranks, _) = pagerank::run_pagerank_with_tolerance(&g, 1e-10, &cfg());
    let reference = pagerank::power_iteration(&g, 300);
    for (a, b) in ranks.iter().zip(reference.iter()) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }
}

#[test]
fn adiam_within_factor_of_exact_on_powerlaw() {
    let g = powerlaw_graph(&PowerLawConfig::new(2_000, 2.5, 6));
    let exact = adiam::exact_diameter(&g);
    let (est, _) = adiam::run_adiam(&g, &cfg());
    // Scale-free graphs have tiny diameters; FM estimates land within a
    // couple of hops.
    assert!(
        (est.diameter as i64 - exact as i64).unsigned_abs() as usize <= exact.max(3),
        "estimated {} vs exact {exact}",
        est.diameter
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// CC equals union-find for arbitrary generated structures.
    #[test]
    fn prop_cc_union_find(nedges in 200usize..1500, alpha in 2.0f64..3.0, seed in 0u64..1000) {
        let g = powerlaw_graph(&PowerLawConfig::new(nedges, alpha, seed));
        let (labels, _) = cc::run_cc(&g, &cfg());
        prop_assert_eq!(labels, union_find_components(&g));
    }

    /// SSSP distances satisfy the triangle inequality over every edge.
    #[test]
    fn prop_sssp_relaxed(nedges in 200usize..1200, seed in 0u64..1000) {
        let g = powerlaw_graph(&PowerLawConfig::new(nedges, 2.5, seed));
        let w = gaussian_edge_weights(g.num_edges(), seed);
        let (dist, _) = sssp::run_sssp(&g, &w, 0, &cfg());
        for (e, &(u, v)) in g.edge_list().iter().enumerate() {
            let (du, dv, we) = (dist[u as usize], dist[v as usize], w[e]);
            if du.is_finite() {
                prop_assert!(dv <= du + we + 1e-9, "edge {e} not relaxed");
            }
            if dv.is_finite() {
                prop_assert!(du <= dv + we + 1e-9, "edge {e} not relaxed");
            }
        }
    }

    /// K-core numbers are monotone under the reference definition: a
    /// vertex's core never exceeds its degree.
    #[test]
    fn prop_kcore_bounded_by_degree(nedges in 200usize..1200, seed in 0u64..1000) {
        let g = powerlaw_graph(&PowerLawConfig::new(nedges, 2.5, seed));
        let (cores, _) = kcore::run_kcore(&g, &ExecutionConfig::with_max_iterations(10_000));
        for v in g.vertices() {
            prop_assert!(cores[v as usize] as usize <= g.degree(v));
        }
    }

    /// PageRank mass stays near n for undirected graphs.
    #[test]
    fn prop_pagerank_mass(nedges in 200usize..1000, seed in 0u64..1000) {
        let g = powerlaw_graph(&PowerLawConfig::new(nedges, 2.5, seed));
        let (ranks, _) = pagerank::run_pagerank_with_tolerance(&g, 1e-8, &cfg());
        let isolated = g.vertices().filter(|&v| g.degree(v) == 0).count();
        let total: f64 = ranks.iter().sum();
        // Isolated vertices hold exactly (1 - d) of mass each, so the total
        // undershoots n by d * isolated.
        let expected = g.num_vertices() as f64 - 0.85 * isolated as f64;
        prop_assert!((total - expected).abs() < 0.05 * expected + 1.0,
            "total {} vs expected {}", total, expected);
    }
}
