//! End-to-end pipeline: synthetic graph → GAS runs → behavior vectors →
//! ensemble metrics, mirroring the paper's workflow at miniature scale.

use graphmine_algos::{run_algorithm, AlgorithmKind, SuiteConfig, Workload};
use graphmine_core::{
    coverage, normalize_behaviors, spread, BehaviorVector, CoverageSampler, RawBehavior, WorkMetric,
};
use graphmine_engine::{ExecutionConfig, RunTrace};

fn config() -> SuiteConfig {
    SuiteConfig {
        exec: ExecutionConfig::with_max_iterations(60),
        ..SuiteConfig::default()
    }
}

fn ga_traces() -> Vec<(AlgorithmKind, RunTrace)> {
    let workload = Workload::powerlaw(3_000, 2.5, 99);
    [
        AlgorithmKind::Cc,
        AlgorithmKind::Kc,
        AlgorithmKind::Tc,
        AlgorithmKind::Sssp,
        AlgorithmKind::Pr,
        AlgorithmKind::Ad,
        AlgorithmKind::Km,
    ]
    .into_iter()
    .map(|alg| {
        let t = run_algorithm(alg, &workload, &config()).expect("GA workload");
        (alg, t)
    })
    .collect()
}

#[test]
fn behavior_pipeline_produces_distinct_points() {
    let traces = ga_traces();
    let raw: Vec<RawBehavior> = traces
        .iter()
        .map(|(_, t)| RawBehavior::from_trace(t, WorkMetric::LogicalOps))
        .collect();
    let behaviors = normalize_behaviors(&raw);
    // Every algorithm lands somewhere different: the pairwise distances are
    // non-trivial for most pairs (the "broad behavior space" of §4.5).
    let s = spread(&behaviors);
    assert!(s > 0.1, "spread {s} suspiciously small");
    // And all coordinates are in [0, 1].
    for b in &behaviors {
        assert!(b.0.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}

#[test]
fn active_fraction_shapes_match_paper_section_4() {
    let traces = ga_traces();
    for (alg, trace) in &traces {
        let af = trace.active_fraction();
        match alg {
            // AD and KM: constant full activity (Figures 1 and 5).
            AlgorithmKind::Ad | AlgorithmKind::Km => {
                assert!(
                    af.iter().all(|&f| (f - 1.0).abs() < 1e-12),
                    "{alg}: expected constant 1.0, got {af:?}"
                );
            }
            // SSSP starts from a single source.
            AlgorithmKind::Sssp => {
                assert!(af[0] < 0.05, "{alg}: should start near zero: {af:?}");
            }
            // CC and PR start fully active.
            AlgorithmKind::Cc | AlgorithmKind::Pr | AlgorithmKind::Kc => {
                assert_eq!(af[0], 1.0, "{alg}: should start fully active");
            }
            // TC converges essentially immediately (§4.5).
            AlgorithmKind::Tc => {
                assert!(trace.num_iterations() <= 2, "{alg} took {af:?}");
            }
            _ => {}
        }
    }
}

#[test]
fn convergence_rates_span_orders_of_magnitude() {
    // §4.5: "the convergence rate differs a lot across domains, by up to
    // three orders of magnitude (TC vs. DD)". At miniature scale we demand
    // at least a 10x gap between the fastest and slowest converger.
    let tc = run_algorithm(
        AlgorithmKind::Tc,
        &Workload::powerlaw(2_000, 2.5, 1),
        &config(),
    )
    .unwrap();
    let dd = run_algorithm(AlgorithmKind::Dd, &Workload::mrf(1056, 2), &config()).unwrap();
    assert!(
        dd.num_iterations() >= 10 * tc.num_iterations(),
        "TC {} vs DD {}",
        tc.num_iterations(),
        dd.num_iterations()
    );
}

#[test]
fn ensemble_metrics_work_on_real_traces() {
    let traces = ga_traces();
    let raw: Vec<RawBehavior> = traces
        .iter()
        .map(|(_, t)| RawBehavior::from_trace(t, WorkMetric::LogicalOps))
        .collect();
    let behaviors = normalize_behaviors(&raw);
    let sampler = CoverageSampler::new(10_000, 5);
    let full_cov = coverage(&behaviors, &sampler);
    let single_cov = coverage(&behaviors[..1], &sampler);
    assert!(full_cov > single_cov, "{full_cov} vs {single_cov}");
    let pair: Vec<BehaviorVector> = vec![behaviors[0], behaviors[1]];
    assert!(spread(&behaviors) > 0.0);
    assert!(coverage(&pair, &sampler) > 0.0);
}

#[test]
fn graph_structure_affects_behavior() {
    // §4: behavior metrics are sensitive to degree distribution. Compare KC
    // on alpha = 2.0 vs alpha = 3.0 at equal size.
    let cfg = config();
    let a20 = run_algorithm(AlgorithmKind::Kc, &Workload::powerlaw(5_000, 2.0, 7), &cfg).unwrap();
    let a30 = run_algorithm(AlgorithmKind::Kc, &Workload::powerlaw(5_000, 3.0, 7), &cfg).unwrap();
    let b20 = RawBehavior::from_trace(&a20, WorkMetric::LogicalOps);
    let b30 = RawBehavior::from_trace(&a30, WorkMetric::LogicalOps);
    let delta = (b20.updt - b30.updt).abs() + (b20.msg - b30.msg).abs();
    assert!(
        delta > 1e-3,
        "KC behavior insensitive to alpha: {b20:?} vs {b30:?}"
    );
}
