//! Chaos suite: deterministic fault injection and simulated process
//! death against the full service stack. The invariants under test:
//!
//! 1. **No job is lost** — every accepted job reaches a terminal state,
//!    across panics, injected I/O faults, and kill-and-restart cycles.
//! 2. **No checkpoint or crash corrupts the run database** — it parses
//!    after every scenario, and journal replay reconstructs any finished
//!    records a crash kept out of it.
//! 3. **Resume is exact** — a job recovered from an engine checkpoint
//!    after a crash produces the same iteration count, logical-ops
//!    behavior, and active-fraction trace as an unfaulted run (wall-clock
//!    is the only legitimate difference).

use graphmine_core::RunDb;
use graphmine_engine::{FaultKind, FaultPlan, FaultSite};
use graphmine_service::{client, Server, ServerHandle, ServiceConfig};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

fn temp_db(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("graphmine_chaos_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}_{}.json", name, std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(PathBuf::from(format!("{}.journal", path.display())));
    let _ = std::fs::remove_dir_all(PathBuf::from(format!("{}.ckpts", path.display())));
    path
}

fn config(db_path: Option<PathBuf>, workers: usize) -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        http_workers: 4,
        db_path,
        cache_bytes: 64 * 1024 * 1024,
        default_timeout_ms: 120_000,
        persist_every: 1,
        retry_backoff_ms: 5,
        ..ServiceConfig::default()
    }
}

fn start_with(config: ServiceConfig) -> (String, ServerHandle) {
    let handle = Server::start(config).expect("server failed to start");
    (handle.addr().to_string(), handle)
}

fn submit(addr: &str, body: Value) -> u64 {
    let (status, response) = client::request(addr, "POST", "/jobs", Some(&body)).unwrap();
    assert_eq!(status, 202, "submission rejected: {response}");
    response["id"].as_u64().unwrap()
}

fn shutdown(addr: &str, handle: ServerHandle) {
    let (status, _) = client::request(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    handle.wait().unwrap();
}

fn metrics(addr: &str) -> Value {
    let (status, m) = client::request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    m
}

/// Terminal-state accounting: every submitted job is exactly one of
/// done/failed/cancelled/timed_out once the queue is empty.
fn assert_no_job_lost(m: &Value) {
    let jobs = &m["jobs"];
    let submitted = jobs["submitted"].as_u64().unwrap();
    let terminal = jobs["done"].as_u64().unwrap()
        + jobs["failed"].as_u64().unwrap()
        + jobs["cancelled"].as_u64().unwrap()
        + jobs["timed_out"].as_u64().unwrap();
    assert_eq!(submitted, terminal, "accepted jobs unaccounted for: {jobs}");
}

#[test]
fn kill_and_restart_loses_no_accepted_job() {
    let db_path = temp_db("kill_restart");

    // One worker: the first job occupies it, the rest sit in the queue
    // when the "process" dies.
    let (addr, handle) = start_with(config(Some(db_path.clone()), 1));
    submit(
        &addr,
        json!({"algorithm": "PR", "size": 100_000, "seed": 1, "max_iterations": 60}),
    );
    for seed in 0..4u64 {
        submit(
            &addr,
            json!({"algorithm": "CC", "size": 1500, "seed": seed, "profile": "quick"}),
        );
    }
    handle.simulate_crash().unwrap();

    // Restart on the same database: journal replay must re-enqueue all 5
    // (none reached a terminal state before the crash).
    let (addr, handle) = start_with(config(Some(db_path.clone()), 2));
    let m = metrics(&addr);
    assert_eq!(
        m["robustness"]["jobs_recovered"], 5,
        "journal replay missed jobs: {m}"
    );
    let (_, jobs) = client::request(&addr, "GET", "/jobs", None).unwrap();
    assert_eq!(jobs["count"], 5);
    for job in jobs["jobs"].as_array().unwrap() {
        let id = job["id"].as_u64().unwrap();
        let terminal = client::wait_for_job(&addr, id, WAIT).unwrap();
        assert_eq!(terminal["state"], "done", "recovered job {id}: {terminal}");
    }
    assert_no_job_lost(&metrics(&addr));
    shutdown(&addr, handle);

    let db = RunDb::load(&db_path).unwrap();
    assert_eq!(db.len(), 5, "all recovered jobs must land in the database");
}

#[test]
fn journal_replay_restores_records_lost_to_a_persist_fault() {
    let db_path = temp_db("persist_fault");

    // Fail the only database save this run will attempt; the journal's
    // Finished record becomes the sole durable copy.
    let plan = Arc::new(FaultPlan::new());
    plan.arm(FaultSite::DbPersist, 1, FaultKind::IoError);
    let mut cfg = config(Some(db_path.clone()), 1);
    cfg.fault_plan = Some(Arc::clone(&plan));
    let (addr, handle) = start_with(cfg);
    let id = submit(
        &addr,
        json!({"algorithm": "PR", "size": 1000, "seed": 7, "profile": "quick"}),
    );
    let done = client::wait_for_job(&addr, id, WAIT).unwrap();
    assert_eq!(done["state"], "done", "{done}");
    assert_eq!(plan.fired(), 1, "the persist fault must have fired");
    // Crash without the final shutdown save: the database file never saw
    // this run.
    handle.simulate_crash().unwrap();
    assert!(
        !db_path.exists(),
        "the faulted persist should have left no database file"
    );

    let (addr, handle) = start_with(config(Some(db_path.clone()), 1));
    let m = metrics(&addr);
    assert_eq!(
        m["db_runs"], 1,
        "journal replay must restore the record: {m}"
    );
    assert_eq!(m["robustness"]["jobs_recovered"], 0);
    shutdown(&addr, handle);
    let db = RunDb::load(&db_path).unwrap();
    assert_eq!(db.len(), 1);
    assert_eq!(db.runs[0].algorithm, "PR");
}

#[test]
fn injected_panic_is_retried_to_success() {
    let plan = Arc::new(FaultPlan::new());
    // Job id 0 panics on its first attempt; one-shot disarm lets the
    // retry through.
    plan.arm(FaultSite::JobStart, 0, FaultKind::Panic);
    let mut cfg = config(None, 1);
    cfg.fault_plan = Some(Arc::clone(&plan));
    let (addr, handle) = start_with(cfg);
    let id = submit(
        &addr,
        json!({"algorithm": "CC", "size": 1000, "seed": 3, "profile": "quick"}),
    );
    let terminal = client::wait_for_job(&addr, id, WAIT).unwrap();
    assert_eq!(terminal["state"], "done", "{terminal}");
    assert_eq!(terminal["attempt"], 2, "exactly one retry expected");
    let m = metrics(&addr);
    assert_eq!(m["robustness"]["retries"], 1);
    assert_eq!(m["robustness"]["panics_quarantined"], 0);
    assert_no_job_lost(&m);
    shutdown(&addr, handle);
}

#[test]
fn exhausted_retry_budget_quarantines_the_job() {
    let plan = Arc::new(FaultPlan::new());
    plan.arm(FaultSite::JobStart, 0, FaultKind::Panic);
    let mut cfg = config(None, 1);
    cfg.retry_budget = 0; // no second chances
    cfg.fault_plan = Some(Arc::clone(&plan));
    let (addr, handle) = start_with(cfg);
    let id = submit(
        &addr,
        json!({"algorithm": "CC", "size": 1000, "seed": 3, "profile": "quick"}),
    );
    let terminal = client::wait_for_job(&addr, id, WAIT).unwrap();
    assert_eq!(terminal["state"], "failed", "{terminal}");
    assert!(
        terminal["error"].as_str().unwrap().contains("quarantined"),
        "{terminal}"
    );
    let m = metrics(&addr);
    assert_eq!(m["robustness"]["panics_quarantined"], 1);
    assert_eq!(m["robustness"]["retries"], 0);
    assert_no_job_lost(&m);
    shutdown(&addr, handle);
}

#[test]
fn checkpointed_job_resumes_across_crash_with_identical_behavior() {
    let request = json!({
        "algorithm": "PR",
        "size": 100_000,
        "seed": 5,
        "max_iterations": 50,
        "checkpoint_every": 2,
    });

    // Reference: the same request on an unfaulted server.
    let clean_db = temp_db("resume_clean");
    let (addr, handle) = start_with(config(Some(clean_db.clone()), 1));
    let id = submit(&addr, request.clone());
    let done = client::wait_for_job(&addr, id, WAIT).unwrap();
    assert_eq!(done["state"], "done", "{done}");
    shutdown(&addr, handle);
    let clean = RunDb::load(&clean_db).unwrap();
    assert_eq!(clean.len(), 1);

    // Faulted path: crash the server once the engine has checkpointed.
    let db_path = temp_db("resume_crash");
    let (addr, handle) = start_with(config(Some(db_path.clone()), 1));
    submit(&addr, request);
    let deadline = Instant::now() + WAIT;
    loop {
        let m = metrics(&addr);
        if m["robustness"]["checkpoints"]["written"].as_u64().unwrap() >= 1 {
            break;
        }
        if m["jobs"]["done"].as_u64().unwrap() >= 1 {
            panic!("job finished before any checkpoint was written; enlarge the workload");
        }
        assert!(Instant::now() < deadline, "no checkpoint appeared in time");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.simulate_crash().unwrap();

    let (addr, handle) = start_with(config(Some(db_path.clone()), 1));
    let m = metrics(&addr);
    assert_eq!(m["robustness"]["jobs_recovered"], 1, "{m}");
    let terminal = client::wait_for_job(&addr, 0, WAIT).unwrap();
    assert_eq!(terminal["state"], "done", "{terminal}");
    let m = metrics(&addr);
    assert!(
        m["robustness"]["checkpoints"]["restored"].as_u64().unwrap() >= 1,
        "the recovered job should resume from its checkpoint: {m}"
    );
    shutdown(&addr, handle);

    // Exactness: iterations, logical-ops behavior, and the per-iteration
    // active-fraction trace all match the unfaulted run bitwise. Only
    // wall-clock measurements may differ.
    let crashed = RunDb::load(&db_path).unwrap();
    assert_eq!(crashed.len(), 1);
    let (a, b) = (&clean.runs[0], &crashed.runs[0]);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.converged, b.converged);
    assert_eq!(a.num_vertices, b.num_vertices);
    assert_eq!(a.num_edges, b.num_edges);
    assert_eq!(a.active_fraction, b.active_fraction);
    assert_eq!(a.behavior_ops, b.behavior_ops, "resume must be exact");
}

// ---------------------------------------------------------------------------
// Storage storms: every durable write/read goes through the I/O shim, and a
// seeded storm of byte-level storage faults (torn writes, short reads,
// ENOSPC, failed fsync, silent bit flips, stale renames) must leave the
// service bitwise-identical to a fault-free run — every fault either
// recovered by the self-healing machinery or surfaced as a typed error.
// ---------------------------------------------------------------------------

/// Deterministic edge list for the storage-storm scenarios: a 600-vertex
/// ring plus two chord families — big enough to split across several
/// ingest chunks, small enough to run in milliseconds.
fn storm_edge_list() -> String {
    let n = 600u32;
    let mut s = String::new();
    for v in 0..n {
        s.push_str(&format!("{} {}\n", v, (v + 1) % n));
        s.push_str(&format!("{} {}\n", v, (v * 7 + 3) % n));
        s.push_str(&format!("{} {}\n", v, (v * 13 + 5) % n));
    }
    s
}

/// Split `edges` into `parts` chunks on line boundaries.
fn chunked(edges: &str, parts: usize) -> Vec<Vec<u8>> {
    let lines: Vec<&str> = edges.lines().collect();
    let per = lines.len().div_ceil(parts);
    lines
        .chunks(per)
        .map(|c| (c.join("\n") + "\n").into_bytes())
        .collect()
}

/// Upload `edges` as stored graph `name`, riding out injected storage
/// faults. Typed chunk and finalize failures are retried — the on-disk
/// session resumes and truncates torn appends, so re-uploads land at the
/// last acknowledged boundary. A finalize that *succeeds* with the wrong
/// fingerprint (a silent bit flip in a chunk append) is caught by the
/// end-to-end check against `expect_fp`, discarded, and re-ingested; a
/// spool corrupted beyond parsing fails finalize twice and is likewise
/// discarded. Returns the installed fingerprint.
fn ingest_stored_graph(addr: &str, name: &str, edges: &str, expect_fp: Option<&str>) -> String {
    let mut c = client::Client::new(addr);
    let chunks = chunked(edges, 3);
    let mut finalize_failures = 0u32;
    for _ in 0..60 {
        let (status, body) = c
            .request("POST", "/graphs", Some(&json!({"name": name})))
            .unwrap();
        assert!(
            status == 200 || status == 201,
            "ingest begin for `{name}`: {status} {body}"
        );
        let mut next = body["next_seq"].as_u64().unwrap();
        let mut chunk_failed = false;
        while (next as usize) < chunks.len() {
            let r = c
                .send_raw(
                    "POST",
                    &format!("/graphs/{name}/chunks?seq={next}"),
                    &chunks[next as usize],
                )
                .unwrap();
            if r.status != 200 {
                chunk_failed = true;
                break;
            }
            next = r.body["next_seq"].as_u64().unwrap();
        }
        if chunk_failed {
            finalize_failures = 0;
            continue;
        }
        let (status, entry) = c
            .request("POST", &format!("/graphs/{name}/finalize"), None)
            .unwrap();
        if status != 201 {
            // Transient (injected pack fault) or permanent (corrupted
            // spool): retry once, then discard the session and re-upload.
            finalize_failures += 1;
            if finalize_failures >= 2 {
                let (s, _) = c
                    .request("DELETE", &format!("/graphs/{name}"), None)
                    .unwrap();
                assert_eq!(s, 200);
                finalize_failures = 0;
            }
            continue;
        }
        let fp = entry["fingerprint"].as_str().unwrap().to_string();
        match expect_fp {
            Some(want) if want != fp => {
                // Installed, verified... and wrong: a bit flip slipped into
                // a chunk append below the store's checksums. The client's
                // content check is the last line of defense.
                let (s, _) = c
                    .request("DELETE", &format!("/graphs/{name}"), None)
                    .unwrap();
                assert_eq!(s, 200);
            }
            _ => return fp,
        }
    }
    panic!("ingest of `{name}` did not converge under the fault storm");
}

struct StormOutcome {
    fingerprint: String,
    runs: Vec<graphmine_core::RunRecord>,
    fired: u64,
}

/// Ingest the storm graph, run a fixed four-job mix (two on the stored
/// graph, two generated, all checkpointing), and return the sorted run
/// records plus how many injected faults fired.
fn run_storm_scenario(
    tag: &str,
    edges: &str,
    plan: Option<Arc<FaultPlan>>,
    expect_fp: Option<&str>,
) -> StormOutcome {
    let db_path = temp_db(tag);
    let graph_dir = PathBuf::from(format!("{}.graphs", db_path.display()));
    let _ = std::fs::remove_dir_all(&graph_dir);
    let mut cfg = config(Some(db_path.clone()), 2);
    cfg.graph_dir = Some(graph_dir.clone());
    cfg.fault_plan = plan.clone();
    let (addr, handle) = start_with(cfg);

    let fingerprint = ingest_stored_graph(&addr, "storm", edges, expect_fp);
    let jobs = [
        json!({"algorithm": "PR", "graph": "storm", "seed": 1, "profile": "quick", "checkpoint_every": 2}),
        json!({"algorithm": "CC", "graph": "storm", "seed": 2, "profile": "quick", "checkpoint_every": 2}),
        json!({"algorithm": "PR", "size": 1200, "seed": 3, "profile": "quick", "checkpoint_every": 2}),
        json!({"algorithm": "CC", "size": 1500, "seed": 4, "profile": "quick", "checkpoint_every": 3}),
    ];
    let ids: Vec<u64> = jobs.iter().map(|j| submit(&addr, j.clone())).collect();
    for id in ids {
        let terminal = client::wait_for_job(&addr, id, WAIT).unwrap();
        assert_eq!(terminal["state"], "done", "{tag}: job {id}: {terminal}");
    }
    let m = metrics(&addr);
    assert_no_job_lost(&m);
    shutdown(&addr, handle);

    let db = RunDb::load(&db_path).unwrap();
    let mut runs = db.runs;
    runs.sort_by_key(|r| (r.algorithm.clone(), r.num_vertices, r.seed));
    let _ = std::fs::remove_dir_all(&graph_dir);
    StormOutcome {
        fingerprint,
        runs,
        fired: plan.map(|p| p.fired()).unwrap_or(0),
    }
}

#[test]
fn seeded_storage_storms_yield_bitwise_identical_results() {
    let edges = storm_edge_list();
    let clean = run_storm_scenario("storage_clean", &edges, None, None);
    assert_eq!(clean.runs.len(), 4);

    // Seeds chosen so the storms collectively hit all six storage sites
    // and all six fault kinds, including silent bit flips on ingest chunk
    // appends (seed 303) and on database persists (seeds 202, 404).
    for seed in [202u64, 303, 404] {
        let plan = Arc::new(FaultPlan::seeded_storage(seed, 8, 12));
        let storm = run_storm_scenario(
            &format!("storage_storm_{seed}"),
            &edges,
            Some(Arc::clone(&plan)),
            Some(&clean.fingerprint),
        );
        assert!(
            storm.fired >= 4,
            "seed {seed}: the storm fired only {} faults",
            storm.fired
        );
        // The stored graph that survived the storm is the one the clean
        // run built, and every job's results are bitwise-identical: no
        // injected fault escaped detection or recovery.
        assert_eq!(storm.fingerprint, clean.fingerprint, "seed {seed}");
        assert_eq!(storm.runs.len(), clean.runs.len(), "seed {seed}");
        for (a, b) in clean.runs.iter().zip(&storm.runs) {
            assert_eq!(a.algorithm, b.algorithm, "seed {seed}");
            assert_eq!(a.seed, b.seed, "seed {seed}");
            assert_eq!(a.iterations, b.iterations, "seed {seed} {}", a.algorithm);
            assert_eq!(a.converged, b.converged, "seed {seed} {}", a.algorithm);
            assert_eq!(a.num_vertices, b.num_vertices, "seed {seed}");
            assert_eq!(a.num_edges, b.num_edges, "seed {seed}");
            assert_eq!(
                a.active_fraction, b.active_fraction,
                "seed {seed} {}: active-fraction trace diverged",
                a.algorithm
            );
            assert_eq!(
                a.behavior_ops, b.behavior_ops,
                "seed {seed} {}: behavior diverged under storage faults",
                a.algorithm
            );
        }
    }
}

#[test]
fn scrub_quarantined_graph_is_refused_with_4xx_not_a_crash() {
    use graphmine_algos::Workload;
    use graphmine_engine::IoShim;
    use graphmine_store::{pack_workload, scrub_catalog, Catalog, StoredGraph};
    use std::io::{Seek, SeekFrom, Write};

    let dir =
        std::env::temp_dir().join(format!("graphmine_chaos_quarantine_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(dir.clone()).unwrap();
    let w = Workload::powerlaw(300, 2.0, 11);
    let path = catalog.dir().join("fragile.gmg");
    pack_workload(&path, &w, "synthetic:powerlaw", 11).unwrap();

    // Flip one bit in the middle of a payload section. With no registered
    // edge-list source, the scrub must quarantine rather than re-pack.
    let sec = {
        let stored = StoredGraph::open(&path).unwrap();
        let s = stored.sections().iter().max_by_key(|s| s.offset).unwrap();
        (s.offset, s.len_bytes)
    };
    let at = sec.0 + sec.1 / 2;
    let byte = std::fs::read(&path).unwrap()[at as usize] ^ 0x08;
    let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(at)).unwrap();
    f.write_all(&[byte]).unwrap();
    drop(f);

    let report = scrub_catalog(&catalog, &IoShim::disabled()).unwrap();
    assert_eq!(report.quarantined(), 1, "{:?}", report.entries);
    assert!(!path.exists());
    assert!(path.with_file_name("fragile.gmg.corrupt").exists());

    // The service now refuses the graph with a 4xx instead of crashing or
    // serving corrupt bytes — and stays healthy for other work.
    let mut cfg = config(None, 1);
    cfg.graph_dir = Some(dir.clone());
    let (addr, handle) = start_with(cfg);
    let (status, body) = client::request(
        &addr,
        "POST",
        "/jobs",
        Some(&json!({"algorithm": "PR", "graph": "fragile"})),
    )
    .unwrap();
    assert_eq!(status, 404, "{body}");
    let id = submit(
        &addr,
        json!({"algorithm": "CC", "size": 800, "seed": 1, "profile": "quick"}),
    );
    let done = client::wait_for_job(&addr, id, WAIT).unwrap();
    assert_eq!(done["state"], "done", "{done}");
    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_fault_storms_never_lose_jobs_or_corrupt_the_db() {
    for seed in [11u64, 23, 47] {
        let db_path = temp_db(&format!("storm_{seed}"));
        let plan = Arc::new(FaultPlan::seeded(
            seed,
            &[
                FaultSite::JobStart,
                FaultSite::Iteration,
                FaultSite::CheckpointWrite,
                FaultSite::DbPersist,
            ],
            16,
            10,
        ));
        let mut cfg = config(Some(db_path.clone()), 2);
        cfg.fault_plan = Some(Arc::clone(&plan));
        let (addr, handle) = start_with(cfg);
        for seed in 0..6u64 {
            submit(
                &addr,
                json!({
                    "algorithm": if seed % 2 == 0 { "CC" } else { "PR" },
                    "size": 1200,
                    "seed": seed,
                    "profile": "quick",
                    "checkpoint_every": 4,
                }),
            );
        }
        for id in 0..6u64 {
            let terminal = client::wait_for_job(&addr, id, WAIT).unwrap();
            let state = terminal["state"].as_str().unwrap();
            assert!(
                matches!(state, "done" | "failed" | "timed_out"),
                "seed {seed} job {id} in unexpected state: {terminal}"
            );
        }
        let m = metrics(&addr);
        assert_no_job_lost(&m);
        shutdown(&addr, handle);
        // Whatever the fault storm did, the database parses and holds
        // exactly the done jobs.
        let db = RunDb::load(&db_path).unwrap();
        assert_eq!(db.len() as u64, m["jobs"]["done"].as_u64().unwrap());
    }
}
