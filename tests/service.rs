//! End-to-end tests of the benchmark-job service over real TCP sockets:
//! submission, polling, caching, cancellation, timeouts, concurrent mixed
//! workloads, ensemble search parity with the offline library, and
//! graceful shutdown with a durable run database.

use graphmine_core::{best_spread_ensemble, RunDb, WorkMetric};
use graphmine_service::{client, Server, ServerHandle, ServiceConfig};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn temp_db(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("graphmine_service_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}_{}.json", name, std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn start(db_path: Option<PathBuf>, workers: usize) -> (String, ServerHandle) {
    let handle = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        http_workers: 4,
        db_path,
        cache_bytes: 64 * 1024 * 1024,
        default_timeout_ms: 120_000,
        persist_every: 1,
        ..ServiceConfig::default()
    })
    .expect("server failed to bind");
    (handle.addr().to_string(), handle)
}

fn submit(addr: &str, body: Value) -> u64 {
    let (status, response) = client::request(addr, "POST", "/jobs", Some(&body)).unwrap();
    assert_eq!(status, 202, "submission rejected: {response}");
    response["id"].as_u64().unwrap()
}

fn shutdown(addr: &str, handle: ServerHandle) {
    let (status, _) = client::request(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    handle.wait().unwrap();
}

#[test]
fn pr_job_end_to_end_with_behavior_vector() {
    let db_path = temp_db("pr_end_to_end");
    let (addr, handle) = start(Some(db_path.clone()), 2);

    let id = submit(
        &addr,
        json!({"algorithm": "PR", "size": 2000, "seed": 11, "profile": "quick"}),
    );
    let done = client::wait_for_job(&addr, id, WAIT).unwrap();
    assert_eq!(done["state"], "done", "job did not finish: {done}");
    assert!(done["iterations"].as_u64().unwrap() > 0);
    assert_eq!(done["run_index"], 0);

    // Its behavior vector is served, 4-dimensional and max-normalized.
    let (status, behavior) = client::request(&addr, "GET", "/behavior?work=ops", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(behavior["count"], 1);
    assert_eq!(behavior["labels"][0], "PR");
    let vector = behavior["vectors"][0].as_array().unwrap();
    assert_eq!(vector.len(), 4);
    for component in vector {
        let x = component.as_f64().unwrap();
        assert!((0.0..=1.0).contains(&x), "component {x} out of [0,1]");
    }

    shutdown(&addr, handle);
    let db = RunDb::load(&db_path).unwrap();
    assert_eq!(db.len(), 1);
    assert_eq!(db.runs[0].algorithm, "PR");
    assert!(db.runs[0].runtime_ms > 0.0);
}

#[test]
fn repeated_graph_spec_hits_the_cache() {
    let (addr, handle) = start(None, 1);
    let spec = json!({"algorithm": "CC", "size": 3000, "seed": 5, "profile": "quick"});
    let first = submit(&addr, spec.clone());
    let cold = client::wait_for_job(&addr, first, WAIT).unwrap();
    assert_eq!(cold["state"], "done");
    assert_eq!(cold["cache_hit"], false);

    // Same spec, different algorithm: the workload is shared.
    let second = submit(
        &addr,
        json!({"algorithm": "PR", "size": 3000, "seed": 5, "profile": "quick"}),
    );
    let warm = client::wait_for_job(&addr, second, WAIT).unwrap();
    assert_eq!(warm["state"], "done");
    assert_eq!(warm["cache_hit"], true);

    let (_, metrics) = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(metrics["cache"]["hits"], 1);
    assert_eq!(metrics["cache"]["misses"], 1);
    assert_eq!(metrics["cache"]["entries"], 1);
    assert!(
        metrics["cache"]["resident_bytes"].as_u64().unwrap() > 0,
        "cached workload reports no resident bytes: {metrics}"
    );

    // A reordered run of the same spec is a different workload: it must
    // miss and occupy its own cache slot.
    let third = submit(
        &addr,
        json!({"algorithm": "PR", "size": 3000, "seed": 5, "profile": "quick", "reorder": true}),
    );
    let reordered = client::wait_for_job(&addr, third, WAIT).unwrap();
    assert_eq!(reordered["state"], "done");
    assert_eq!(reordered["cache_hit"], false);
    let (_, metrics) = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(metrics["cache"]["misses"], 2);
    assert_eq!(metrics["cache"]["entries"], 2);
    shutdown(&addr, handle);
}

#[test]
fn direction_jobs_validate_and_report_counters() {
    let (addr, handle) = start(None, 1);

    // An unknown direction is rejected at submission.
    let (status, response) = client::request(
        &addr,
        "POST",
        "/jobs",
        Some(&json!({"algorithm": "PR", "size": 1000, "direction": "sideways"})),
    )
    .unwrap();
    assert_eq!(status, 400, "bad direction accepted: {response}");

    // Forced push, forced pull, and auto all complete — and land on
    // identical iteration counts, since direction never changes semantics.
    let mut iteration_counts = Vec::new();
    for dir in ["push", "pull", "auto"] {
        let id = submit(
            &addr,
            json!({
                "algorithm": "PR",
                "size": 2000,
                "seed": 21,
                "profile": "quick",
                "direction": dir,
            }),
        );
        let done = client::wait_for_job(&addr, id, WAIT).unwrap();
        assert_eq!(done["state"], "done", "direction {dir}: {done}");
        iteration_counts.push(done["iterations"].as_u64().unwrap());
    }
    assert_eq!(iteration_counts[0], iteration_counts[1]);
    assert_eq!(iteration_counts[0], iteration_counts[2]);

    // The metrics split every executed iteration between push and pull,
    // and the forced runs guarantee both counters moved.
    let (_, metrics) = client::request(&addr, "GET", "/metrics", None).unwrap();
    let push = metrics["direction"]["push_iterations"].as_u64().unwrap();
    let pull = metrics["direction"]["pull_iterations"].as_u64().unwrap();
    assert!(push > 0, "no push iterations recorded: {metrics}");
    assert!(pull > 0, "no pull iterations recorded: {metrics}");
    assert_eq!(push + pull, iteration_counts.iter().sum::<u64>());
    shutdown(&addr, handle);
}

#[test]
fn eight_concurrent_clients_mixed_algorithms() {
    let db_path = temp_db("concurrent");
    let (addr, handle) = start(Some(db_path.clone()), 4);
    let algorithms = ["CC", "PR", "KC", "SSSP", "AD", "KM", "ALS", "Jacobi"];

    let clients: Vec<_> = algorithms
        .iter()
        .enumerate()
        .map(|(i, alg)| {
            let addr = addr.clone();
            let alg = alg.to_string();
            std::thread::spawn(move || {
                let mut ids = Vec::new();
                for j in 0..3u64 {
                    let id = submit(
                        &addr,
                        json!({
                            "algorithm": alg,
                            "size": 1500,
                            "seed": i as u64 * 10 + j,
                            "profile": "quick",
                        }),
                    );
                    ids.push(id);
                }
                for id in ids {
                    let terminal = client::wait_for_job(&addr, id, WAIT).unwrap();
                    assert_eq!(terminal["state"], "done", "job {id}: {terminal}");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread panicked");
    }

    let (_, metrics) = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(metrics["jobs"]["submitted"], 24);
    assert_eq!(metrics["jobs"]["done"], 24);
    assert_eq!(metrics["jobs"]["failed"], 0);
    assert_eq!(metrics["db_runs"], 24);

    shutdown(&addr, handle);
    // Per-job persistence under concurrency never corrupted the database.
    let db = RunDb::load(&db_path).unwrap();
    assert_eq!(db.len(), 24);
    let mut seen: Vec<&str> = db.runs.iter().map(|r| r.algorithm.as_str()).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), algorithms.len());
}

#[test]
fn wall_clock_timeout_stops_long_jobs() {
    let (addr, handle) = start(None, 1);
    let id = submit(
        &addr,
        json!({
            "algorithm": "PR",
            "size": 300_000,
            "seed": 1,
            "max_iterations": 400,
            "timeout_ms": 1,
        }),
    );
    let terminal = client::wait_for_job(&addr, id, WAIT).unwrap();
    assert_eq!(terminal["state"], "timed_out", "got: {terminal}");
    // The engine stopped at an iteration boundary, far short of the cap.
    assert!(terminal["iterations"].as_u64().unwrap() < 400);
    let (_, metrics) = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(metrics["jobs"]["timed_out"], 1);
    shutdown(&addr, handle);
}

#[test]
fn cancel_endpoint_stops_a_job() {
    let (addr, handle) = start(None, 1);
    let id = submit(
        &addr,
        json!({"algorithm": "PR", "size": 300_000, "seed": 2, "max_iterations": 400}),
    );
    let (status, _) = client::request(&addr, "POST", &format!("/jobs/{id}/cancel"), None).unwrap();
    assert_eq!(status, 200);
    let terminal = client::wait_for_job(&addr, id, WAIT).unwrap();
    assert_eq!(terminal["state"], "cancelled", "got: {terminal}");
    shutdown(&addr, handle);
}

#[test]
fn ensemble_search_agrees_with_offline_library() {
    let db_path = temp_db("ensemble_parity");
    let (addr, handle) = start(Some(db_path.clone()), 2);

    // A mixed pool: graph-analytics and CF runs at two sizes.
    for (alg, size, seed) in [
        ("CC", 2000u64, 1u64),
        ("PR", 2000, 1),
        ("KC", 2000, 1),
        ("SSSP", 4000, 2),
        ("AD", 4000, 2),
        ("ALS", 2000, 3),
        ("SGD", 2000, 3),
    ] {
        let id = submit(
            &addr,
            json!({"algorithm": alg, "size": size, "seed": seed, "profile": "quick"}),
        );
        let terminal = client::wait_for_job(&addr, id, WAIT).unwrap();
        assert_eq!(terminal["state"], "done", "{alg}: {terminal}");
    }

    let (status, served) = client::request(
        &addr,
        "POST",
        "/ensemble/search",
        Some(&json!({"objective": "spread", "size": 3, "work": "ops"})),
    )
    .unwrap();
    assert_eq!(status, 200);

    shutdown(&addr, handle);

    // Offline search over the very same persisted runs must agree exactly:
    // both sides are deterministic over identical inputs.
    let db = RunDb::load(&db_path).unwrap();
    assert_eq!(db.len(), 7);
    let pool = db.behaviors(WorkMetric::LogicalOps);
    let (members, score) = best_spread_ensemble(&pool, 3);
    let served_members: Vec<usize> = served["members"]
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap() as usize)
        .collect();
    assert_eq!(served_members, members);
    let served_score = served["score"].as_f64().unwrap();
    assert!(
        (served_score - score).abs() < 1e-12,
        "served {served_score} vs offline {score}"
    );
    let labels = db.labels();
    for (slot, &member) in served_members.iter().enumerate() {
        assert_eq!(served["algorithms"][slot], labels[member].as_str());
    }
}

#[test]
fn shutdown_drains_queued_jobs_into_the_db() {
    let db_path = temp_db("drain");
    // One worker so most of the burst is still queued at shutdown time.
    let (addr, handle) = start(Some(db_path.clone()), 1);
    for seed in 0..6u64 {
        submit(
            &addr,
            json!({"algorithm": "CC", "size": 1500, "seed": seed, "profile": "quick"}),
        );
    }
    let (status, drain) = client::request(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(drain["state"], "draining");

    // New submissions are refused while draining (the acceptor may already
    // be gone, in which case the connection itself fails — also fine).
    if let Ok((status, _)) = client::request(
        &addr,
        "POST",
        "/jobs",
        Some(&json!({"algorithm": "PR", "size": 100})),
    ) {
        assert_eq!(status, 503);
    }

    handle.wait().unwrap();
    // Every accepted job ran before the server exited.
    let db = RunDb::load(&db_path).unwrap();
    assert_eq!(db.len(), 6);
}
