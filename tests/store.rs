//! Store round-trip fidelity: a packed-and-reloaded workload must be
//! indistinguishable from the original to every algorithm of the suite.
//!
//! The unit tests in `graphmine-store` prove the bytes round-trip; these
//! tests prove the *behavior* does — each of the 14 algorithms is run on
//! the in-memory workload and on its mmap-loaded twin, and the full
//! behavior traces (iterations, active counts, work, convergence) must be
//! bit-identical once wall-clock noise is stripped.

use graphmine_algos::{
    run_algorithm, run_algorithm_digest, AlgorithmKind, Domain, SuiteConfig, Workload,
};
use graphmine_graph::Representation;
use graphmine_store::{load_workload, pack_workload, StoreError, StoredGraph};
use std::fs::{self, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("graphmine-store-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&p);
    fs::create_dir_all(&p).unwrap();
    p
}

/// The workload each algorithm's domain expects, at probe scale.
fn workload_for(algorithm: AlgorithmKind, seed: u64) -> Workload {
    match algorithm.domain() {
        Domain::GraphAnalytics | Domain::Clustering => Workload::powerlaw(2_000, 2.5, seed),
        Domain::CollaborativeFiltering => Workload::ratings(2_000, 2.5, seed),
        Domain::LinearSolver => Workload::matrix(64, seed),
        Domain::GraphicalModel => {
            if algorithm == AlgorithmKind::Lbp {
                Workload::grid(16, seed)
            } else {
                Workload::mrf(1_000, seed)
            }
        }
    }
}

#[test]
fn all_fourteen_algorithms_trace_identically_after_round_trip() {
    let dir = temp_dir("traces");
    let config = SuiteConfig::default();
    for algorithm in AlgorithmKind::ALL {
        let seed = 7;
        let original = workload_for(algorithm, seed);
        let path = dir.join(format!("{}.gmg", algorithm.abbrev()));
        pack_workload(&path, &original, "test", seed).unwrap();
        let stored = StoredGraph::open(&path).unwrap();
        stored.verify().unwrap();
        let loaded = load_workload(&stored).unwrap();
        // Satellite guarantee: on mmap platforms the reloaded topology
        // lives in the file, not on the heap.
        if stored.is_mmap() {
            assert_eq!(
                loaded.graph().topology_heap_bytes(),
                0,
                "{}: mmap-backed load copied its topology",
                algorithm.abbrev()
            );
        }
        let reference = run_algorithm(algorithm, &original, &config).unwrap();
        let replayed = run_algorithm(algorithm, &loaded, &config).unwrap();
        assert_eq!(
            reference.without_wall_clock(),
            replayed.without_wall_clock(),
            "{}: stored-graph trace diverged from the in-memory run",
            algorithm.abbrev()
        );
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn reordered_round_trip_still_traces_identically() {
    // Degree-reordering after load is how the service applies `reorder` to
    // stored graphs; it must commute with the round trip.
    let dir = temp_dir("reorder");
    let original = Workload::powerlaw(2_000, 2.5, 11);
    let path = dir.join("pl.gmg");
    pack_workload(&path, &original, "test", 11).unwrap();
    let loaded = load_workload(&StoredGraph::open(&path).unwrap()).unwrap();
    let config = SuiteConfig::default();
    for algorithm in [AlgorithmKind::Pr, AlgorithmKind::Cc, AlgorithmKind::Sssp] {
        let a = run_algorithm(algorithm, &original.reordered_by_degree(), &config).unwrap();
        let b = run_algorithm(algorithm, &loaded.reordered_by_degree(), &config).unwrap();
        assert_eq!(
            a.without_wall_clock(),
            b.without_wall_clock(),
            "{}: reorder-after-load diverged",
            algorithm.abbrev()
        );
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn compressed_round_trip_is_bit_identical_for_all_fourteen_algorithms() {
    // Pack every suite workload with delta-varint compressed adjacency,
    // reopen it via mmap, and require the final result of every algorithm
    // to be **bit-identical** to the in-memory plain run — compression
    // plus the store round trip must be completely invisible.
    let dir = temp_dir("compressed");
    let config = SuiteConfig::default();
    for algorithm in AlgorithmKind::ALL {
        let seed = 7;
        let plain = workload_for(algorithm, seed);
        let compressed = plain
            .with_representation(Representation::Compressed)
            .unwrap();
        let path = dir.join(format!("{}.gmg", algorithm.abbrev()));
        pack_workload(&path, &compressed, "test", seed).unwrap();
        let stored = StoredGraph::open(&path).unwrap();
        stored.verify().unwrap();
        let loaded = load_workload(&stored).unwrap();
        assert_eq!(
            loaded.graph().representation(),
            Representation::Compressed,
            "{}: representation lost in round trip",
            algorithm.abbrev()
        );
        if stored.is_mmap() {
            assert_eq!(
                loaded.graph().topology_heap_bytes(),
                0,
                "{}: mmap-backed compressed load copied its topology",
                algorithm.abbrev()
            );
        }
        let (ref_digest, ref_trace) = run_algorithm_digest(algorithm, &plain, &config).unwrap();
        let (digest, trace) = run_algorithm_digest(algorithm, &loaded, &config).unwrap();
        assert_eq!(
            ref_digest,
            digest,
            "{}: compressed round trip changed the result bits",
            algorithm.abbrev()
        );
        assert_eq!(
            ref_trace.without_wall_clock(),
            trace.without_wall_clock(),
            "{}: compressed round trip changed the behavior trace",
            algorithm.abbrev()
        );
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_compressed_section_fails_closed_with_typed_error() {
    // Flip one byte inside the varint payload: verify() must report the
    // exact section, and a full-checksum bypass (load without verify) must
    // still be caught by the CSR validation.
    let dir = temp_dir("compressed-corrupt");
    let workload = Workload::powerlaw(2_000, 2.5, 3)
        .with_representation(Representation::Compressed)
        .unwrap();
    let path = dir.join("pl.gmg");
    pack_workload(&path, &workload, "test", 3).unwrap();
    let stored = StoredGraph::open(&path).unwrap();
    let data_section = stored
        .sections()
        .iter()
        .find(|s| s.name == "out_nbr_data")
        .expect("compressed pack has an out_nbr_data section")
        .clone();
    drop(stored);
    let at = data_section.offset + data_section.len_bytes / 2;
    let flipped = fs::read(&path).unwrap()[at as usize] ^ 0x80;
    let mut f = OpenOptions::new().write(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(at)).unwrap();
    f.write_all(&[flipped]).unwrap();
    drop(f);
    let stored = StoredGraph::open(&path).unwrap();
    match stored.verify() {
        Err(StoreError::CorruptSection { sections }) => {
            assert_eq!(sections, vec![data_section.name.clone()])
        }
        other => panic!("expected CorruptSection, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn plain_packs_keep_format_version_one() {
    // Backward compatibility: plain packs must keep writing version 1 so
    // pre-compression readers still open them; only compressed packs bump
    // the version (and set the flag that makes old readers fail closed).
    // Compressed packs write version 3 (word-padded varint payloads).
    let dir = temp_dir("versions");
    let plain_path = dir.join("plain.gmg");
    let packed_path = dir.join("packed.gmg");
    let workload = Workload::powerlaw(1_000, 2.5, 5);
    pack_workload(&plain_path, &workload, "test", 5).unwrap();
    pack_workload(
        &packed_path,
        &workload
            .with_representation(Representation::Compressed)
            .unwrap(),
        "test",
        5,
    )
    .unwrap();
    let plain = StoredGraph::open(&plain_path).unwrap();
    let packed = StoredGraph::open(&packed_path).unwrap();
    assert_eq!(plain.header().version, 1);
    assert_eq!(packed.header().version, 3);
    assert!(
        packed.header().num_edges == plain.header().num_edges
            && packed.file_len() < plain.file_len(),
        "compressed file {} not smaller than plain {}",
        packed.file_len(),
        plain.file_len()
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn v3_padded_payloads_round_trip_bitwise() {
    // Version-3 stores pad every varint payload section to a word multiple
    // with at least one full zero guard word. The padding must be present
    // on disk, be all-zero, and survive the round trip bitwise: the mapped
    // compressed slices must equal the in-memory builder's byte for byte,
    // guard bytes included.
    use graphmine_graph::Direction;
    let dir = temp_dir("v3-bitwise");
    let workload = Workload::powerlaw(2_000, 2.5, 9)
        .with_representation(Representation::Compressed)
        .unwrap();
    let path = dir.join("pl.gmg");
    pack_workload(&path, &workload, "test", 9).unwrap();
    let stored = StoredGraph::open(&path).unwrap();
    assert_eq!(stored.header().version, 3);
    stored.verify().unwrap();
    for entry in stored
        .sections()
        .iter()
        .filter(|s| s.name.ends_with("nbr_data"))
    {
        let boff = stored
            .section(&entry.name.replace("nbr_data", "nbr_offsets"))
            .expect("varint payload has a matching byte-offsets section");
        let offsets = stored.section_payload(boff);
        let logical = u64::from_ne_bytes(offsets[offsets.len() - 8..].try_into().unwrap()) as usize;
        assert_eq!(
            entry.len_bytes % 8,
            0,
            "{}: padded section not a word multiple",
            entry.name
        );
        assert!(
            entry.len_bytes as usize >= logical + 8,
            "{}: padded length {} leaves no full guard word past logical {logical}",
            entry.name,
            entry.len_bytes
        );
        assert!(
            stored.section_payload(entry)[logical..]
                .iter()
                .all(|&b| b == 0),
            "{}: nonzero guard padding",
            entry.name
        );
    }
    let loaded = load_workload(&stored).unwrap();
    let dirs: &[Direction] = if loaded.graph().is_directed() {
        &[Direction::Out, Direction::In]
    } else {
        &[Direction::Out]
    };
    for &d in dirs {
        let a = workload.graph().compressed_slices(d).unwrap();
        let b = loaded.graph().compressed_slices(d).unwrap();
        assert_eq!(a.0, b.0, "row offsets diverged");
        assert_eq!(a.1, b.1, "byte offsets diverged");
        assert_eq!(a.2, b.2, "varint payload (incl. padding) diverged");
        assert_eq!(a.3, b.3, "edge ids diverged");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_unpadded_v2_files_still_open_and_run_identically() {
    // Files written by the pre-padding (version 2) writer have varint
    // payloads that end exactly at their logical length. They must keep
    // opening, verifying, and producing bit-identical results — interior
    // rows batch-decode, the unguarded tail falls back to the scalar path.
    use graphmine_store::format::{FLAG_DIRECTED, FLAG_SORTED_ROWS, FORMAT_VERSION_COMPRESSED};
    use graphmine_store::writer::{write_store, SectionData};
    use std::borrow::Cow;

    let dir = temp_dir("legacy-v2");
    let plain = Workload::powerlaw(2_000, 2.5, 7);
    let compressed = plain
        .with_representation(Representation::Compressed)
        .unwrap();
    let v3_path = dir.join("v3.gmg");
    pack_workload(&v3_path, &compressed, "test", 7).unwrap();

    // Reconstruct the file exactly as the version-2 writer laid it out:
    // truncate each varint payload to its logical length, then patch the
    // header version back down (the fingerprint does not cover the
    // version, so only the header bytes change).
    let v2_path = dir.join("v2.gmg");
    {
        let stored = StoredGraph::open(&v3_path).unwrap();
        let mut sections = Vec::new();
        for entry in stored.sections() {
            let mut bytes = stored.section_payload(entry).to_vec();
            if entry.name.ends_with("nbr_data") {
                let boff = stored
                    .section(&entry.name.replace("nbr_data", "nbr_offsets"))
                    .unwrap();
                let offsets = stored.section_payload(boff);
                let logical = u64::from_ne_bytes(offsets[offsets.len() - 8..].try_into().unwrap());
                bytes.truncate(logical as usize);
            }
            sections.push(SectionData {
                name: entry.name.clone(),
                elem: entry.elem,
                bytes: Cow::Owned(bytes),
            });
        }
        let h = *stored.header();
        write_store(
            &v2_path,
            h.flags & FLAG_DIRECTED != 0,
            h.flags & FLAG_SORTED_ROWS != 0,
            true,
            h.num_vertices,
            h.num_edges,
            h.workload_class,
            &sections,
        )
        .unwrap();
        let mut header = *StoredGraph::open(&v2_path).unwrap().header();
        header.version = FORMAT_VERSION_COMPRESSED;
        let mut f = OpenOptions::new().write(true).open(&v2_path).unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        f.write_all(&header.encode()).unwrap();
    }

    let stored = StoredGraph::open(&v2_path).unwrap();
    assert_eq!(stored.header().version, 2);
    stored.verify().unwrap();
    let loaded = load_workload(&stored).unwrap();
    assert_eq!(loaded.graph().representation(), Representation::Compressed);
    let config = SuiteConfig::default();
    for algorithm in [AlgorithmKind::Pr, AlgorithmKind::Sssp, AlgorithmKind::Cc] {
        let (ref_digest, ref_trace) = run_algorithm_digest(algorithm, &plain, &config).unwrap();
        let (digest, trace) = run_algorithm_digest(algorithm, &loaded, &config).unwrap();
        assert_eq!(
            ref_digest,
            digest,
            "{}: legacy v2 file changed the result bits",
            algorithm.abbrev()
        );
        assert_eq!(
            ref_trace.without_wall_clock(),
            trace.without_wall_clock(),
            "{}: legacy v2 file changed the behavior trace",
            algorithm.abbrev()
        );
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn files_from_a_future_format_version_fail_closed() {
    // A stale reader meeting a file from the future must refuse with a
    // typed error, not misread padded sections as unpadded (or vice versa).
    let dir = temp_dir("future-version");
    let workload = Workload::powerlaw(1_000, 2.5, 13)
        .with_representation(Representation::Compressed)
        .unwrap();
    let path = dir.join("pl.gmg");
    pack_workload(&path, &workload, "test", 13).unwrap();
    let mut header = *StoredGraph::open(&path).unwrap().header();
    header.version = 4;
    let mut f = OpenOptions::new().write(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(0)).unwrap();
    f.write_all(&header.encode()).unwrap();
    drop(f);
    match StoredGraph::open(&path) {
        Err(StoreError::UnsupportedVersion(4)) => {}
        other => panic!("expected UnsupportedVersion(4), got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn scrub_quarantines_corruption_inside_the_guard_padding() {
    // The per-section checksum covers the guard padding too: a flipped
    // byte inside the padding (which no decode would ever read) must still
    // fail verification and get the file quarantined by a scrub.
    use graphmine_engine::IoShim;
    use graphmine_store::{scrub_catalog, Catalog, ScrubOutcome};

    let dir = temp_dir("scrub-padding");
    let catalog = Catalog::open(dir.clone()).unwrap();
    let workload = Workload::powerlaw(1_000, 2.5, 17)
        .with_representation(Representation::Compressed)
        .unwrap();
    let path = catalog.dir().join("padded.gmg");
    pack_workload(&path, &workload, "synthetic:powerlaw", 17).unwrap();
    let entry = StoredGraph::open(&path)
        .unwrap()
        .sections()
        .iter()
        .find(|s| s.name == "out_nbr_data")
        .expect("compressed pack has an out_nbr_data section")
        .clone();
    // The section's final byte is always inside the zero guard word.
    let at = entry.offset + entry.len_bytes - 1;
    let mut f = OpenOptions::new().write(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(at)).unwrap();
    f.write_all(&[0x5A]).unwrap();
    drop(f);
    let report = scrub_catalog(&catalog, &IoShim::disabled()).unwrap();
    assert_eq!(report.quarantined(), 1, "{:?}", report.entries);
    match &report.entries[0].1 {
        ScrubOutcome::Quarantined { detail } => {
            assert!(
                detail.contains("out_nbr_data"),
                "quarantine detail should name the damaged section: {detail}"
            );
        }
        other => panic!("expected Quarantined, got {other:?}"),
    }
    assert!(!path.exists());
    assert!(path.with_file_name("padded.gmg.corrupt").exists());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_payload_is_caught_before_any_algorithm_runs() {
    let dir = temp_dir("corrupt");
    let workload = Workload::powerlaw(1_000, 2.5, 3);
    let path = dir.join("pl.gmg");
    pack_workload(&path, &workload, "test", 3).unwrap();
    // Flip one byte in the last data section (well past header and TOC).
    let stored = StoredGraph::open(&path).unwrap();
    let last = stored
        .sections()
        .iter()
        .max_by_key(|s| s.offset)
        .unwrap()
        .clone();
    drop(stored);
    let at = last.offset + last.len_bytes - 1;
    let flipped = !fs::read(&path).unwrap()[at as usize];
    let mut f = OpenOptions::new().write(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(at)).unwrap();
    f.write_all(&[flipped]).unwrap();
    drop(f);
    let stored = StoredGraph::open(&path).unwrap();
    match stored.verify() {
        Err(StoreError::CorruptSection { sections }) => assert_eq!(sections, vec![last.name]),
        other => panic!("expected CorruptSection, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}
