//! Store round-trip fidelity: a packed-and-reloaded workload must be
//! indistinguishable from the original to every algorithm of the suite.
//!
//! The unit tests in `graphmine-store` prove the bytes round-trip; these
//! tests prove the *behavior* does — each of the 14 algorithms is run on
//! the in-memory workload and on its mmap-loaded twin, and the full
//! behavior traces (iterations, active counts, work, convergence) must be
//! bit-identical once wall-clock noise is stripped.

use graphmine_algos::{run_algorithm, AlgorithmKind, Domain, SuiteConfig, Workload};
use graphmine_store::{load_workload, pack_workload, StoreError, StoredGraph};
use std::fs::{self, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("graphmine-store-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&p);
    fs::create_dir_all(&p).unwrap();
    p
}

/// The workload each algorithm's domain expects, at probe scale.
fn workload_for(algorithm: AlgorithmKind, seed: u64) -> Workload {
    match algorithm.domain() {
        Domain::GraphAnalytics | Domain::Clustering => Workload::powerlaw(2_000, 2.5, seed),
        Domain::CollaborativeFiltering => Workload::ratings(2_000, 2.5, seed),
        Domain::LinearSolver => Workload::matrix(64, seed),
        Domain::GraphicalModel => {
            if algorithm == AlgorithmKind::Lbp {
                Workload::grid(16, seed)
            } else {
                Workload::mrf(1_000, seed)
            }
        }
    }
}

#[test]
fn all_fourteen_algorithms_trace_identically_after_round_trip() {
    let dir = temp_dir("traces");
    let config = SuiteConfig::default();
    for algorithm in AlgorithmKind::ALL {
        let seed = 7;
        let original = workload_for(algorithm, seed);
        let path = dir.join(format!("{}.gmg", algorithm.abbrev()));
        pack_workload(&path, &original, "test", seed).unwrap();
        let stored = StoredGraph::open(&path).unwrap();
        stored.verify().unwrap();
        let loaded = load_workload(&stored).unwrap();
        // Satellite guarantee: on mmap platforms the reloaded topology
        // lives in the file, not on the heap.
        if stored.is_mmap() {
            assert_eq!(
                loaded.graph().topology_heap_bytes(),
                0,
                "{}: mmap-backed load copied its topology",
                algorithm.abbrev()
            );
        }
        let reference = run_algorithm(algorithm, &original, &config).unwrap();
        let replayed = run_algorithm(algorithm, &loaded, &config).unwrap();
        assert_eq!(
            reference.without_wall_clock(),
            replayed.without_wall_clock(),
            "{}: stored-graph trace diverged from the in-memory run",
            algorithm.abbrev()
        );
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn reordered_round_trip_still_traces_identically() {
    // Degree-reordering after load is how the service applies `reorder` to
    // stored graphs; it must commute with the round trip.
    let dir = temp_dir("reorder");
    let original = Workload::powerlaw(2_000, 2.5, 11);
    let path = dir.join("pl.gmg");
    pack_workload(&path, &original, "test", 11).unwrap();
    let loaded = load_workload(&StoredGraph::open(&path).unwrap()).unwrap();
    let config = SuiteConfig::default();
    for algorithm in [AlgorithmKind::Pr, AlgorithmKind::Cc, AlgorithmKind::Sssp] {
        let a = run_algorithm(algorithm, &original.reordered_by_degree(), &config).unwrap();
        let b = run_algorithm(algorithm, &loaded.reordered_by_degree(), &config).unwrap();
        assert_eq!(
            a.without_wall_clock(),
            b.without_wall_clock(),
            "{}: reorder-after-load diverged",
            algorithm.abbrev()
        );
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_payload_is_caught_before_any_algorithm_runs() {
    let dir = temp_dir("corrupt");
    let workload = Workload::powerlaw(1_000, 2.5, 3);
    let path = dir.join("pl.gmg");
    pack_workload(&path, &workload, "test", 3).unwrap();
    // Flip one byte in the last data section (well past header and TOC).
    let stored = StoredGraph::open(&path).unwrap();
    let last = stored
        .sections()
        .iter()
        .max_by_key(|s| s.offset)
        .unwrap()
        .clone();
    drop(stored);
    let at = last.offset + last.len_bytes - 1;
    let flipped = !fs::read(&path).unwrap()[at as usize];
    let mut f = OpenOptions::new().write(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(at)).unwrap();
    f.write_all(&[flipped]).unwrap();
    drop(f);
    let stored = StoredGraph::open(&path).unwrap();
    match stored.verify() {
        Err(StoreError::ChecksumMismatch { section, .. }) => assert_eq!(section, last.name),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}
