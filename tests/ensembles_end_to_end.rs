//! Ensemble methodology end-to-end on a real (quick-profile) run database:
//! the paper's headline claims, checked.

use graphmine_core::{
    best_coverage_ensemble, best_spread_ensemble, coverage_upper_bound, frequency_in_top_ensembles,
    spread_upper_bound, top_k_ensembles, BehaviorVector, CoverageSampler, Objective, RunDb,
    WorkMetric,
};
use graphmine_harness::{run_matrix, ScaleProfile};
use std::sync::OnceLock;

fn db() -> &'static RunDb {
    static DB: OnceLock<RunDb> = OnceLock::new();
    DB.get_or_init(|| run_matrix(ScaleProfile::Quick, |_| ()))
}

const ENSEMBLE_ALGOS: [&str; 11] = [
    "CC", "KC", "TC", "SSSP", "PR", "AD", "KM", "ALS", "NMF", "SGD", "SVD",
];

fn unrestricted_pool(db: &RunDb) -> Vec<BehaviorVector> {
    let behaviors = db.behaviors(WorkMetric::LogicalOps);
    ENSEMBLE_ALGOS
        .iter()
        .flat_map(|a| db.indices_of_algorithm(a))
        .map(|i| behaviors[i])
        .collect()
}

fn single_algo_pool(db: &RunDb, alg: &str) -> Vec<BehaviorVector> {
    let behaviors = db.behaviors(WorkMetric::LogicalOps);
    db.indices_of_algorithm(alg)
        .into_iter()
        .map(|i| behaviors[i])
        .collect()
}

#[test]
fn claim_unrestricted_beats_every_single_algorithm_spread() {
    // Paper contribution 3 / Figure 18: unrestricted ensembles achieve far
    // better spread than any single-algorithm ensemble.
    let pool = unrestricted_pool(db());
    let size = 10;
    let (_, unrestricted) = best_spread_ensemble(&pool, size);
    for alg in ENSEMBLE_ALGOS {
        let single = single_algo_pool(db(), alg);
        let (_, s) = best_spread_ensemble(&single, size);
        assert!(
            unrestricted >= s,
            "{alg}: single {s} beats unrestricted {unrestricted}"
        );
    }
    // And the advantage over the *average* single algorithm is large.
    let mean_single: f64 = ENSEMBLE_ALGOS
        .iter()
        .map(|alg| best_spread_ensemble(&single_algo_pool(db(), alg), size).1)
        .sum::<f64>()
        / ENSEMBLE_ALGOS.len() as f64;
    assert!(
        unrestricted > 1.5 * mean_single,
        "unrestricted {unrestricted} vs mean single {mean_single}"
    );
}

#[test]
fn claim_unrestricted_beats_single_algorithm_coverage() {
    // Figure 19: ~30% better coverage than single-algorithm ensembles.
    let sampler = CoverageSampler::new(20_000, 0xBEEF);
    let pool = unrestricted_pool(db());
    let size = 10;
    let (_, unrestricted) = best_coverage_ensemble(&pool, size, &sampler);
    let best_single: f64 = ENSEMBLE_ALGOS
        .iter()
        .map(|alg| best_coverage_ensemble(&single_algo_pool(db(), alg), size, &sampler).1)
        .fold(0.0, f64::max);
    assert!(
        unrestricted >= best_single,
        "unrestricted {unrestricted} < best single {best_single}"
    );
}

#[test]
fn claim_spread_decays_and_coverage_grows_with_size() {
    // Figures 14–15 shapes.
    let pool = unrestricted_pool(db());
    let sampler = CoverageSampler::new(10_000, 0xCAFE);
    let mut last_spread = f64::INFINITY;
    let mut last_cov = 0.0;
    for size in [2usize, 5, 10, 15] {
        let (_, s) = best_spread_ensemble(&pool, size);
        let (_, c) = best_coverage_ensemble(&pool, size, &sampler);
        assert!(s <= last_spread + 1e-9, "spread grew at size {size}");
        assert!(c >= last_cov - 1e-9, "coverage shrank at size {size}");
        last_spread = s;
        last_cov = c;
    }
}

#[test]
fn claim_achieved_values_below_upper_bounds() {
    let pool = unrestricted_pool(db());
    let sampler = CoverageSampler::new(10_000, 0xF00D);
    for size in [5usize, 10] {
        let (_, s) = best_spread_ensemble(&pool, size);
        let bound = spread_upper_bound(size, 3);
        assert!(
            s <= bound + 1e-6,
            "size {size}: spread {s} above bound {bound}"
        );
        let (_, c) = best_coverage_ensemble(&pool, size, &sampler);
        let cbound = coverage_upper_bound(size, &sampler, 3);
        assert!(
            c <= cbound + 1e-6,
            "size {size}: coverage {c} above bound {cbound}"
        );
    }
}

#[test]
fn claim_thousandfold_behavior_variation() {
    // Paper contribution 1: "1000-fold variation across five dimensions of
    // graph computation behavior". Check the raw (pre-normalization)
    // dynamic range across the database on at least one dimension.
    let db = db();
    let mut min = [f64::INFINITY; 4];
    let mut max = [0.0f64; 4];
    for r in &db.runs {
        let c = r.raw(WorkMetric::LogicalOps).components();
        for k in 0..4 {
            if c[k] > 0.0 {
                min[k] = min[k].min(c[k]);
                max[k] = max[k].max(c[k]);
            }
        }
    }
    let best_ratio = (0..4).map(|k| max[k] / min[k]).fold(0.0, f64::max);
    assert!(
        best_ratio > 1000.0,
        "largest dynamic range only {best_ratio:.1}x"
    );
}

#[test]
fn claim_useful_algorithms_appear_in_top_sets() {
    // Contribution 4 / Figures 20–21: KM, ALS, TC are disproportionately
    // useful. At quick scale the exact ranking can differ, so assert the
    // weaker invariant the paper's conclusion rests on: the frequency
    // distribution over the top-100 sets is strongly non-uniform, and at
    // least one of {KM, ALS, TC} ranks in the top three contributors.
    let pool = unrestricted_pool(db());
    let labels: Vec<String> = ENSEMBLE_ALGOS
        .iter()
        .flat_map(|a| std::iter::repeat_n(a.to_string(), 20))
        .collect();
    let sampler = CoverageSampler::new(4_000, 0xABCD);
    let top = top_k_ensembles(&pool, 5, 100, Objective::Spread, &sampler);
    assert_eq!(top.len(), 100);
    let freq = frequency_in_top_ensembles(&top, &labels);
    let mut ranked: Vec<(&str, usize)> = ENSEMBLE_ALGOS
        .iter()
        .map(|a| (*a, freq.get(*a).copied().unwrap_or(0)))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1));
    let top3: Vec<&str> = ranked[..3].iter().map(|(a, _)| *a).collect();
    assert!(
        top3.iter().any(|a| ["KM", "ALS", "TC"].contains(a)),
        "none of KM/ALS/TC in top-3 contributors: {ranked:?}"
    );
    // Non-uniformity: the top contributor appears at least 3x the median.
    let median = ranked[ENSEMBLE_ALGOS.len() / 2].1.max(1);
    assert!(
        ranked[0].1 >= 3 * median,
        "frequency distribution too flat: {ranked:?}"
    );
}

#[test]
fn claim_limited_algorithms_conserve_quality() {
    // Contribution 5 / Figures 22–23: a {KM, ALS, TC} suite keeps most of
    // the unrestricted spread.
    let db = db();
    let behaviors = db.behaviors(WorkMetric::LogicalOps);
    let limited: Vec<BehaviorVector> =
        graphmine_core::limited_algorithm_pool(db, &["KM", "ALS", "TC"])
            .into_iter()
            .map(|i| behaviors[i])
            .collect();
    let pool = unrestricted_pool(db);
    let size = 10;
    let (_, full) = best_spread_ensemble(&pool, size);
    let (_, lim) = best_spread_ensemble(&limited, size);
    assert!(
        lim > 0.5 * full,
        "limited suite lost too much spread: {lim} vs {full}"
    );
}
