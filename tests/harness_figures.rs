//! The harness renders every table and figure from a cached database, and
//! the rendered content reflects the paper's findings.

use graphmine_core::{RunDb, WorkMetric};
use graphmine_harness::{render_figure, run_matrix, run_or_load, ScaleProfile, FIGURE_IDS};
use std::sync::OnceLock;

fn db() -> &'static RunDb {
    static DB: OnceLock<RunDb> = OnceLock::new();
    DB.get_or_init(|| run_matrix(ScaleProfile::Quick, |_| ()))
}

fn render(id: &str) -> String {
    render_figure(id, db(), ScaleProfile::Quick, WorkMetric::LogicalOps)
        .unwrap_or_else(|| panic!("{id} did not render"))
}

#[test]
fn all_figures_render_non_trivially() {
    for id in FIGURE_IDS {
        let out = render(id);
        assert!(out.lines().count() >= 3, "{id} too short:\n{out}");
    }
}

#[test]
fn figure_counts_match_paper_structure() {
    // 23 figures + 2 tables are listed in DESIGN.md; table 1 is context
    // only, so the harness renders 23 figures + tables 2 and 3.
    assert_eq!(FIGURE_IDS.len(), 25);
}

#[test]
fn fig1_ad_active_fraction_is_constant_one() {
    let out = render("fig1");
    for line in out.lines().filter(|l| l.starts_with("AD")) {
        let series = line.split('[').nth(1).unwrap().trim_end_matches(']');
        for v in series.split_whitespace() {
            assert_eq!(v, "1.00", "AD active fraction wavered: {line}");
        }
    }
}

#[test]
fn fig5_km_active_fraction_is_constant_one() {
    let out = render("fig5");
    let mut km_lines = 0;
    for line in out.lines().filter(|l| l.starts_with("KM")) {
        km_lines += 1;
        let series = line.split('[').nth(1).unwrap().trim_end_matches(']');
        for v in series.split_whitespace() {
            assert_eq!(v, "1.00", "KM active fraction wavered: {line}");
        }
    }
    assert_eq!(km_lines, 20, "expected one row per KM run");
}

#[test]
fn fig11_lbp_activity_drops() {
    let out = render("fig11");
    for line in out.lines().filter(|l| l.starts_with("LBP")) {
        let series = line.split('[').nth(1).unwrap().trim_end_matches(']');
        let values: Vec<f64> = series
            .split_whitespace()
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(values[0], 1.0);
        assert!(values.last().unwrap() < &0.8, "LBP never dropped: {line}");
    }
}

#[test]
fn fig3_tc_eread_constant_across_graphs() {
    // Paper: "TC ... has constant EREAD for all graphs" (per-edge).
    let out = render("fig3");
    let mut ereads: Vec<f64> = Vec::new();
    for line in out.lines().skip(3) {
        let cols: Vec<&str> = line.split_whitespace().collect();
        if cols.len() == 6 {
            ereads.push(cols[4].parse().unwrap());
        }
    }
    assert!(ereads.len() >= 20);
    let (min, max) = ereads.iter().fold((f64::INFINITY, 0.0f64), |(mn, mx), &v| {
        (mn.min(v), mx.max(v))
    });
    assert!(max - min < 0.05, "TC per-edge EREAD varies: {min}..{max}");
}

#[test]
fn fig13_lists_all_fourteen_algorithms() {
    let out = render("fig13");
    for alg in [
        "CC", "KC", "TC", "SSSP", "PR", "AD", "KM", "ALS", "NMF", "SGD", "SVD", "Jacobi", "LBP",
        "DD",
    ] {
        assert!(
            out.lines().any(|l| l.starts_with(alg)),
            "fig13 missing {alg}"
        );
    }
}

#[test]
fn fig22_23_include_all_limited_suites() {
    for id in ["fig22", "fig23"] {
        let out = render(id);
        for suite in ["unrestricted", "3 algorithms", "3 graphs", "runtime-ltd"] {
            assert!(out.contains(suite), "{id} missing suite {suite}");
        }
    }
}

#[test]
fn cli_cache_flow() {
    // run_or_load twice: second load must be identical (float_roundtrip).
    let dir = std::env::temp_dir().join("graphmine_it_cache");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("quick_db.json");
    let _ = std::fs::remove_file(&path);
    let a = run_or_load(ScaleProfile::Quick, &path, |_| ()).unwrap();
    let b = run_or_load(ScaleProfile::Quick, &path, |_| ()).unwrap();
    assert_eq!(a, b);
    let _ = std::fs::remove_file(&path);
}
