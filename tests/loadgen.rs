//! End-to-end tests of `graphmine-loadgen` driving an in-process
//! `graphmine-service` over real HTTP: offered-vs-achieved throughput at
//! low rate, coordinated-omission accounting, separate shed counting
//! under admission control, schedule determinism, and the SLO search.

use graphmine_loadgen::{
    build_schedule, find_max_sustainable, run, ArrivalProcess, JobMix, LoadReport, Outcome,
    RunConfig, SloConfig,
};
use graphmine_service::{client, Server, ServerHandle, ServiceConfig};
use std::time::Duration;

fn start_server(workers: usize, max_queue_depth: usize) -> (String, ServerHandle) {
    let handle = Server::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        http_workers: 4,
        cache_bytes: 64 * 1024 * 1024,
        default_timeout_ms: 60_000,
        persist_every: 0,
        max_queue_depth,
        ..ServiceConfig::default()
    })
    .unwrap();
    (handle.addr().to_string(), handle)
}

fn stop(addr: &str, handle: ServerHandle) {
    let (status, _) = client::request(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    handle.wait().unwrap();
}

#[test]
fn open_loop_schedules_are_deterministic_for_a_seed() {
    let mix = JobMix::suite(300, 0.5);
    let a = build_schedule(
        ArrivalProcess::Poisson,
        150.0,
        Duration::from_secs(3),
        2024,
        &mix,
    );
    let b = build_schedule(
        ArrivalProcess::Poisson,
        150.0,
        Duration::from_secs(3),
        2024,
        &mix,
    );
    assert!(a.len() > 300, "expected a few hundred arrivals");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.intended, y.intended);
        assert_eq!(x.class, y.class);
        assert_eq!(x.body, y.body, "job mix draws must also be identical");
    }
}

#[test]
fn low_rate_open_loop_completes_the_offered_load() {
    let (addr, handle) = start_server(2, 0);
    // 10/s of cache-hot quick PageRank jobs: far below capacity, so every
    // arrival should complete and achieved throughput tracks offered.
    let cfg = RunConfig::open(
        &addr,
        10.0,
        Duration::from_secs(2),
        7,
        JobMix::single("PR", 200, true),
    );
    let result = run(&cfg).unwrap();
    let report = LoadReport::build(&cfg, &result);

    assert!(report.counts.submitted > 0);
    assert_eq!(report.counts.transport_errors, 0, "report: {report:?}");
    assert_eq!(report.counts.shed, 0);
    assert_eq!(report.counts.done, report.counts.submitted);

    // Achieved ≈ offered at low rate. Elapsed includes the tail wait for
    // the final jobs, so allow a generous band.
    let achieved = report.achieved_rate_per_s;
    assert!(
        achieved > 5.0 && achieved < 15.0,
        "achieved {achieved}/s for offered 10/s"
    );

    // Coordinated-omission correction measures from the intended send
    // time, which can only add delay on top of what the service itself
    // measured for the job (queue + run).
    for s in &result.samples {
        if s.outcome == Outcome::Done {
            let corrected_ms = s.latency_us as f64 / 1000.0;
            assert!(
                corrected_ms >= s.service_ms * 0.999,
                "corrected {corrected_ms}ms < service-measured {}ms",
                s.service_ms
            );
        }
    }

    // The report carries the seed and windowed service-side stages.
    assert_eq!(report.seed, 7);
    let total = report.service_stages["total"]["count"].as_u64().unwrap();
    assert!(
        total >= report.counts.done,
        "stage window saw {total} jobs, loadgen completed {}",
        report.counts.done
    );
    for stage in ["queue_wait", "cache_load", "execute", "serialize"] {
        assert!(
            report.service_stages[stage]["count"].as_u64().unwrap() > 0,
            "stage {stage} empty in window"
        );
    }
    stop(&addr, handle);
}

#[test]
fn admission_control_sheds_are_counted_separately() {
    // One worker, queue depth 1, no retries: overdriving with slow cold
    // jobs must produce 429s that land in `shed`, not in `failed`.
    let (addr, handle) = start_server(1, 1);
    let mut cfg = RunConfig::open(
        &addr,
        100.0,
        Duration::from_millis(500),
        13,
        JobMix::single("PR", 20_000, false),
    );
    cfg.max_retries = 0;
    let result = run(&cfg).unwrap();
    let report = LoadReport::build(&cfg, &result);

    assert!(report.counts.shed > 0, "expected sheds: {report:?}");
    assert_eq!(report.counts.transport_errors, 0);
    assert!(report.counts.http_429 >= report.counts.shed);
    assert_eq!(
        report.counts.done + report.counts.failed + report.counts.shed,
        report.counts.submitted,
        "every request must be classified exactly once"
    );
    // Shed requests stay out of the completion-latency distribution.
    assert_eq!(
        report.latency_histogram.count(),
        report.counts.done,
        "latency histogram counts only completed jobs"
    );
    stop(&addr, handle);
}

#[test]
fn slo_search_converges_and_reports_per_stage_percentiles() {
    let (addr, handle) = start_server(2, 0);
    let base = RunConfig::open(
        &addr,
        20.0,
        Duration::from_millis(500),
        11,
        JobMix::single("PR", 200, true),
    );
    // A generous objective with a small probe cap: every probe passes,
    // the expansion exhausts the cap, and the floor it found stands.
    let slo = SloConfig {
        p99_limit_ms: 30_000.0,
        initial_rate: 20.0,
        max_probes: 3,
        ..SloConfig::default()
    };
    let result = find_max_sustainable(&base, &slo).unwrap();
    assert!(result.converged, "search did not converge: {result:?}");
    assert!(result.max_sustainable_rate_per_s >= 20.0);
    assert_eq!(result.probes.len(), 3);
    // Probe seeds are deterministic and distinct.
    assert_ne!(result.probes[0].seed, result.probes[1].seed);

    let v = result.to_json();
    assert_eq!(v["p99_limit_ms"], 30_000.0);
    assert_eq!(v["probes"][0]["pass"], true);
    let best = &v["best_report"];
    assert!(!best.is_null(), "expected a best report");
    for q in ["p50_us", "p90_us", "p99_us", "p999_us"] {
        assert!(
            best["latency"].get(q).is_some(),
            "missing overall quantile {q}"
        );
        assert!(
            best["service_stages"]["execute"].get(q).is_some(),
            "missing stage quantile {q}"
        );
    }
    assert!(
        best["per_class"][0]["latency"].get("p99_us").is_some(),
        "missing per-class quantile"
    );
    stop(&addr, handle);
}
