//! Quickstart: generate a scale-free graph, run PageRank on the GAS
//! engine, and look at its behavior the way the paper does.
//!
//! ```text
//! cargo run --release -p graphmine-examples --bin quickstart
//! ```

use graphmine_algos::pagerank::run_pagerank;
use graphmine_core::{RawBehavior, WorkMetric};
use graphmine_engine::ExecutionConfig;
use graphmine_gen::{powerlaw_graph, PowerLawConfig};
use graphmine_graph::DegreeStats;

fn main() {
    // 1. Generate a power-law graph: 50k edges, α = 2.5 (a typical
    //    real-world degree exponent), fixed seed for reproducibility.
    let graph = powerlaw_graph(&PowerLawConfig::new(50_000, 2.5, 42));
    let stats = DegreeStats::of(&graph);
    println!(
        "graph: {} vertices, {} edges, degree min/mean/max = {}/{:.1}/{}",
        graph.num_vertices(),
        graph.num_edges(),
        stats.min,
        stats.mean,
        stats.max
    );

    // 2. Run PageRank to convergence.
    let (ranks, trace) = run_pagerank(&graph, &ExecutionConfig::default());
    let top = ranks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "pagerank: {} iterations, converged = {}, top vertex = {} (rank {:.2})",
        trace.num_iterations(),
        trace.converged,
        top.0,
        top.1
    );

    // 3. The paper's five behavior metrics.
    println!("\nactive fraction by iteration (paper metric 1):");
    for (i, f) in trace.active_fraction().iter().enumerate().take(12) {
        println!("  iter {i:>2}: {:>5.1}% {}", f * 100.0, bar(*f));
    }
    let b = RawBehavior::from_trace(&trace, WorkMetric::WallNanos);
    println!("\nper-edge behavior (paper metrics 2-5):");
    println!("  UPDT  = {:.4} updates/iter/edge", b.updt);
    println!("  WORK  = {:.1} ns apply/iter/edge", b.work);
    println!("  EREAD = {:.4} edge reads/iter/edge", b.eread);
    println!("  MSG   = {:.4} messages/iter/edge", b.msg);
    println!("\nnext: see design_benchmark_suite for the ensemble methodology.");
}

fn bar(f: f64) -> String {
    "#".repeat((f * 40.0).round() as usize)
}
