//! The paper's motivating scenario: comparative evaluations of
//! graph-processing systems reach conflicting conclusions when the
//! benchmark ensemble samples the behavior space badly (Table 1).
//!
//! Here the two "systems" are two configurations of the bundled engine —
//! parallel and sequential execution — playing the roles of, say, GraphLab
//! and Giraph. A *narrow* ensemble (one algorithm on one graph, as several
//! published studies used) and a *diverse* ensemble (spread-optimized
//! across algorithms and graphs) evaluate them; the diverse ensemble
//! exposes workload classes where the ranking flips or the gap collapses.
//!
//! ```text
//! cargo run --release -p graphmine-examples --bin compare_systems
//! ```

use graphmine_algos::{run_algorithm, AlgorithmKind, SuiteConfig, Workload};
use graphmine_engine::ExecutionConfig;
use std::time::Instant;

/// One benchmark cell: algorithm + workload description.
struct Cell {
    name: String,
    algorithm: AlgorithmKind,
    workload: Workload,
}

fn time_system(cell: &Cell, sequential: bool) -> f64 {
    let exec = if sequential {
        ExecutionConfig::with_max_iterations(60).sequential()
    } else {
        ExecutionConfig::with_max_iterations(60)
    };
    let config = SuiteConfig {
        exec,
        ..SuiteConfig::default()
    };
    let t0 = Instant::now();
    run_algorithm(cell.algorithm, &cell.workload, &config).expect("domain-consistent cell");
    t0.elapsed().as_secs_f64()
}

fn evaluate(title: &str, cells: &[Cell]) {
    println!("\n=== {title} ===");
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "benchmark", "parallel(s)", "sequential(s)", "speedup"
    );
    let mut wins = 0usize;
    for cell in cells {
        let par = time_system(cell, false);
        let seq = time_system(cell, true);
        let speedup = seq / par.max(1e-9);
        if speedup > 1.0 {
            wins += 1;
        }
        println!(
            "{:<28} {:>12.3} {:>12.3} {:>7.2}x",
            cell.name, par, seq, speedup
        );
    }
    println!(
        "verdict: \"parallel system\" wins {wins}/{} benchmarks",
        cells.len()
    );
}

fn main() {
    // The narrow study: one algorithm, one graph — like evaluating systems
    // on K-core alone (Elser et al., Table 1 of the paper).
    let narrow = vec![Cell {
        name: "KC on 50k-edge α=2.0".into(),
        algorithm: AlgorithmKind::Kc,
        workload: Workload::powerlaw(50_000, 2.0, 1),
    }];

    // The diverse study: algorithms with opposite compute/communication
    // profiles on graphs of different sizes and skews (a spread-style
    // ensemble per the paper's §5 methodology).
    let diverse = vec![
        Cell {
            name: "KC on 50k-edge α=2.0".into(),
            algorithm: AlgorithmKind::Kc,
            workload: Workload::powerlaw(50_000, 2.0, 1),
        },
        Cell {
            name: "TC on 100k-edge α=2.0".into(),
            algorithm: AlgorithmKind::Tc,
            workload: Workload::powerlaw(100_000, 2.0, 2),
        },
        Cell {
            name: "SSSP on 100k-edge α=3.0".into(),
            algorithm: AlgorithmKind::Sssp,
            workload: Workload::powerlaw(100_000, 3.0, 3),
        },
        Cell {
            name: "ALS on 20k-rating α=2.5".into(),
            algorithm: AlgorithmKind::Als,
            workload: Workload::ratings(20_000, 2.5, 4),
        },
        Cell {
            name: "KM on 50k-edge α=2.75".into(),
            algorithm: AlgorithmKind::Km,
            workload: Workload::powerlaw(50_000, 2.75, 5),
        },
        Cell {
            name: "SGD on 20k-rating α=2.0".into(),
            algorithm: AlgorithmKind::Sgd,
            workload: Workload::ratings(20_000, 2.0, 6),
        },
    ];

    println!("comparing two \"systems\": the engine in parallel vs sequential mode");
    evaluate("narrow ensemble (single algorithm, single graph)", &narrow);
    evaluate("diverse ensemble (algorithm + graph diversity)", &diverse);
    println!(
        "\nA single-cell study generalizes its one ratio to the whole system;\n\
         the diverse ensemble shows the margin varies per behavior region —\n\
         exactly the paper's argument for spread/coverage-designed suites."
    );
}
