//! What would this computation cost on a cluster? The paper ran on 48
//! nodes; this example uses the engine's partition-aware counters to show
//! how vertex placement turns the EREAD/MSG behavior metrics into network
//! traffic — and why partitioner choice is a genuine trade-off on
//! scale-free graphs.
//!
//! ```text
//! cargo run --release -p graphmine-examples --bin cluster_placement
//! ```

use graphmine_algos::pagerank::run_pagerank_with_config;
use graphmine_engine::ExecutionConfig;
use graphmine_gen::{powerlaw_graph, rmat_graph, PowerLawConfig, RmatConfig};
use graphmine_graph::{
    edge_cut_fraction, greedy_ldg_partition, hash_partition, partition_load_imbalance, Graph,
};

fn study(name: &str, graph: &Graph) {
    println!(
        "\n=== {name}: {} vertices, {} edges ===",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:<12} {:>6} {:>9} {:>10} {:>14}",
        "partitioner", "parts", "edge-cut", "imbalance", "remote msgs/it"
    );
    let parts = 48u32; // the paper's cluster size
    for (pname, labels) in [
        ("hash", hash_partition(graph.num_vertices(), parts)),
        ("greedy-ldg", greedy_ldg_partition(graph, parts)),
    ] {
        let cut = edge_cut_fraction(graph, &labels);
        let imbalance = partition_load_imbalance(graph, &labels, parts);
        let config = ExecutionConfig::with_max_iterations(40).with_partition(labels);
        let (_, trace) = run_pagerank_with_config(graph, 1e-3, &config);
        println!(
            "{pname:<12} {parts:>6} {cut:>9.3} {imbalance:>10.2} {:>14.0}",
            trace.remote_msg() + trace.remote_eread()
        );
    }
}

fn main() {
    // Chung-Lu scale-free graph (the study's generator) ...
    let chung_lu = powerlaw_graph(&PowerLawConfig::new(100_000, 2.2, 1));
    study("Chung-Lu power-law (α = 2.2)", &chung_lu);

    // ... and the Graph500 R-MAT family the paper's §6 discusses.
    let rmat = rmat_graph(&RmatConfig::graph500(13, 2));
    study("Graph500 R-MAT (scale 13)", &rmat);

    println!(
        "\nHash placement balances load but cuts ~98% of edges at 48 parts;\n\
         greedy placement cuts fewer edges at the price of load imbalance —\n\
         the communication the behavior metrics EREAD/MSG would put on the\n\
         wire is a direct function of that choice (DESIGN.md substitution #1)."
    );
}
