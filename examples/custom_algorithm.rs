//! Implement a *custom* vertex program against the public engine API and
//! place it in the behavior space next to the built-in suite — the paper's
//! "basic algorithm analysis" use case (§5.1).
//!
//! The custom program is label-propagation community detection (LPA):
//! every vertex adopts its neighborhood's most frequent label.
//!
//! ```text
//! cargo run --release -p graphmine-examples --bin custom_algorithm
//! ```

use graphmine_algos::{run_algorithm, AlgorithmKind, SuiteConfig, Workload};
use graphmine_core::{normalize_behaviors, RawBehavior, WorkMetric};
use graphmine_engine::{ApplyInfo, EdgeSet, ExecutionConfig, NoGlobal, SyncEngine, VertexProgram};
use graphmine_graph::{EdgeId, Graph, VertexId};
use std::collections::HashMap;

/// Label-propagation community detection.
struct LabelPropagation;

/// Vertex state: current community label + whether the last apply changed.
#[derive(Clone, Copy)]
struct LpaState {
    label: u32,
    changed: bool,
}

impl VertexProgram for LabelPropagation {
    type State = LpaState;
    type EdgeData = ();
    /// Neighbor label histogram.
    type Accum = HashMap<u32, u32>;
    type Message = ();
    type Global = NoGlobal;

    fn gather_edges(&self) -> EdgeSet {
        EdgeSet::Out
    }
    fn scatter_edges(&self) -> EdgeSet {
        EdgeSet::Out
    }

    fn gather(
        &self,
        _graph: &Graph,
        _v: VertexId,
        _e: EdgeId,
        _nbr: VertexId,
        _v_state: &LpaState,
        nbr_state: &LpaState,
        _edge: &(),
        _g: &NoGlobal,
    ) -> HashMap<u32, u32> {
        HashMap::from([(nbr_state.label, 1)])
    }

    fn merge(&self, into: &mut HashMap<u32, u32>, from: HashMap<u32, u32>) {
        for (label, count) in from {
            *into.entry(label).or_insert(0) += count;
        }
    }

    fn apply(
        &self,
        _v: VertexId,
        state: &mut LpaState,
        acc: Option<HashMap<u32, u32>>,
        _msg: Option<&()>,
        _g: &NoGlobal,
        info: &mut ApplyInfo,
    ) {
        let Some(histogram) = acc else {
            state.changed = false;
            return;
        };
        info.ops += histogram.len() as u64;
        // Most frequent neighbor label; ties break toward the smaller label
        // for determinism.
        let best = histogram
            .iter()
            .map(|(&l, &c)| (c, std::cmp::Reverse(l)))
            .max()
            .map(|(_, std::cmp::Reverse(l))| l)
            .unwrap_or(state.label);
        state.changed = best != state.label;
        state.label = best;
    }

    fn scatter(
        &self,
        _graph: &Graph,
        _v: VertexId,
        _e: EdgeId,
        _nbr: VertexId,
        state: &LpaState,
        _nbr_state: &LpaState,
        _edge: &(),
        _g: &NoGlobal,
    ) -> Option<()> {
        state.changed.then_some(())
    }

    fn combine(&self, _into: &mut (), _from: ()) {}
}

fn main() {
    let workload = Workload::powerlaw(30_000, 2.5, 123);
    let graph = workload.graph();

    // Run the custom program on the public engine API.
    let states: Vec<LpaState> = graph
        .vertices()
        .map(|v| LpaState {
            label: v,
            changed: true,
        })
        .collect();
    let engine = SyncEngine::new(graph, LabelPropagation, states, vec![(); graph.num_edges()]);
    let (finals, lpa_trace) = engine.run(&ExecutionConfig::with_max_iterations(100));
    let mut communities: Vec<u32> = finals.iter().map(|s| s.label).collect();
    communities.sort_unstable();
    communities.dedup();
    println!(
        "LPA: {} iterations, {} communities found on {} vertices",
        lpa_trace.num_iterations(),
        communities.len(),
        graph.num_vertices()
    );

    // Place LPA in the behavior space next to the built-in GA suite.
    let config = SuiteConfig {
        exec: ExecutionConfig::with_max_iterations(100),
        ..SuiteConfig::default()
    };
    let mut raw = vec![RawBehavior::from_trace(&lpa_trace, WorkMetric::WallNanos)];
    let mut names = vec!["LPA (custom)".to_string()];
    for alg in [
        AlgorithmKind::Cc,
        AlgorithmKind::Kc,
        AlgorithmKind::Tc,
        AlgorithmKind::Sssp,
        AlgorithmKind::Pr,
        AlgorithmKind::Ad,
        AlgorithmKind::Km,
    ] {
        let trace = run_algorithm(alg, &workload, &config).expect("GA workload");
        raw.push(RawBehavior::from_trace(&trace, WorkMetric::WallNanos));
        names.push(alg.abbrev().to_string());
    }
    let behaviors = normalize_behaviors(&raw);
    println!("\nnormalized behavior vectors <UPDT, WORK, EREAD, MSG>:");
    for (name, b) in names.iter().zip(behaviors.iter()) {
        println!(
            "  {:<13} [{:.3} {:.3} {:.3} {:.3}]",
            name, b.0[0], b.0[1], b.0[2], b.0[3]
        );
    }
    // Who does LPA behave most like?
    let (nearest, d) = behaviors[1..]
        .iter()
        .enumerate()
        .map(|(i, b)| (i + 1, behaviors[0].distance(b)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "\nLPA's nearest behavioral neighbor: {} (distance {:.3})\n\
         → a benchmark suite already containing {} gains little from adding LPA.",
        names[nearest], d, names[nearest]
    );
}
