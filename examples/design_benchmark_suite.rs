//! Design a benchmark suite with the paper's methodology: run the
//! experiment matrix, map every run into the behavior space, and pick the
//! ensemble that explores the space best under a budget.
//!
//! ```text
//! cargo run --release -p graphmine-examples --bin design_benchmark_suite
//! ```

use graphmine_core::{
    best_coverage_ensemble, best_spread_ensemble, coverage_upper_bound, pareto_front,
    runtime_limited_cost, spread_upper_bound, BehaviorVector, CoverageSampler, WorkMetric,
};
use graphmine_harness::{run_matrix, ScaleProfile};

fn main() {
    println!("running the quick-profile experiment matrix (232 runs)...");
    let db = run_matrix(ScaleProfile::Quick, |_| ());
    let behaviors = db.behaviors(WorkMetric::WallNanos);

    // Pool = the 11 varied-structure algorithms (paper §5.2 excludes
    // Jacobi/LBP/DD whose graph structure does not vary).
    let pool_idx: Vec<usize> = [
        "CC", "KC", "TC", "SSSP", "PR", "AD", "KM", "ALS", "NMF", "SGD", "SVD",
    ]
    .iter()
    .flat_map(|a| db.indices_of_algorithm(a))
    .collect();
    let pool: Vec<BehaviorVector> = pool_idx.iter().map(|&i| behaviors[i]).collect();
    println!("behavior-space pool: {} runs\n", pool.len());

    let sampler = CoverageSampler::new(100_000, 7);
    let budget = 8; // benchmark suite size the user can afford

    // Suite A: maximize spread (dispersion — catches behavior extremes).
    let (spread_members, spread_val) = best_spread_ensemble(&pool, budget);
    println!(
        "suite A (max spread = {spread_val:.3}, upper bound {:.3}):",
        spread_upper_bound(budget, 1)
    );
    for &local in &spread_members {
        let r = &db.runs[pool_idx[local]];
        println!(
            "  <{:<4} nedges={:<5} α={}>",
            r.algorithm,
            r.graph.label,
            r.graph.alpha.map(|a| a.to_string()).unwrap_or_default()
        );
    }

    // Suite B: maximize coverage (no behavior is far from the suite).
    let (cov_members, cov_val) = best_coverage_ensemble(&pool, budget, &sampler);
    println!(
        "\nsuite B (max coverage = {cov_val:.3}, upper bound {:.3}):",
        coverage_upper_bound(budget, &sampler, 1)
    );
    for &local in &cov_members {
        let r = &db.runs[pool_idx[local]];
        println!(
            "  <{:<4} nedges={:<5} α={}>",
            r.algorithm,
            r.graph.label,
            r.graph.alpha.map(|a| a.to_string()).unwrap_or_default()
        );
    }

    // The spread/coverage trade-off (paper §7 "optimal ensembles"):
    let front = pareto_front(&pool, budget, 20, &sampler);
    println!("\nspread/coverage Pareto front at size {budget}:");
    for e in &front {
        println!("  spread {:.3}  coverage {:.3}", e.spread, e.coverage);
    }

    // Runtime optimization (paper §5.6): constant-active-fraction members
    // can be truncated without changing their behavior vector.
    let members: Vec<usize> = cov_members.iter().map(|&l| pool_idx[l]).collect();
    let full_cost = runtime_limited_cost(&db, &members, &[], usize::MAX);
    let short_cost = runtime_limited_cost(&db, &members, &graphmine_core::limits::SHORTENABLE, 20);
    println!(
        "\nsuite B cost: {full_cost} iterations full, {short_cost} with the\n\
         constant-behavior runs (AD/KM/NMF/SGD/SVD) truncated to 20 iterations\n\
         — identical spread/coverage, {}% cheaper.",
        (100 * (full_cost - short_cost)) / full_cost.max(1)
    );
}
